// Scenario axis — one catalogue, four workloads, one policy.
//
// The engine's pluggable workloads (Poisson, constant-rate, flash crowd,
// diurnal modulation) run over the same Zipf catalogue under batched
// greedy merging, reporting the delay-distribution and channel metrics
// side by side. Claims under test: the delay guarantee holds under every
// workload shape (zero violations), the flash crowd inflates both the
// arrival volume and the server's peak channel demand relative to plain
// Poisson, and a channel capacity sized for the Poisson peak is visibly
// violated by the flash crowd — the Section-5 capacity argument, now as
// a measurement.
#include "bench/registry.h"
#include "online/policy.h"
#include "sim/engine.h"
#include "util/table.h"

namespace {

using namespace smerge;
using namespace smerge::sim;

constexpr ArrivalProcess kProcesses[] = {
    ArrivalProcess::kPoisson, ArrivalProcess::kConstantRate,
    ArrivalProcess::kFlashCrowd, ArrivalProcess::kDiurnal};

}  // namespace

SMERGE_BENCH(sim_workload_mix,
             "Scenario mix — Poisson vs constant vs flash-crowd vs diurnal "
             "workloads on one Zipf catalogue, batched greedy merging",
             "workload", "arrivals", "streams_served", "peak_concurrency",
             "p50_wait", "p99_wait", "max_wait", "violations") {
  WorkloadConfig base;
  base.objects = ctx.quick ? 8 : 64;
  base.zipf_exponent = 1.0;
  base.mean_gap = ctx.quick ? 5e-3 : 1e-3;
  base.horizon = ctx.quick ? 5.0 : 50.0;
  base.seed = ctx.seed;  // reproducible from the CLI (--seed)
  base.burst_start = base.horizon * 0.25;
  base.burst_duration = base.horizon * 0.1;
  base.burst_multiplier = 10.0;
  base.diurnal_amplitude = 0.8;
  base.diurnal_period = base.horizon / 2.0;
  const double delay = 0.02;

  bench::BenchResult result;
  auto& workload_series = result.add_series("workload");
  auto& arrivals_series = result.add_series("arrivals");
  auto& streams_series = result.add_series("streams_served");
  auto& peak_series = result.add_series("peak_concurrency");
  auto& p50_series = result.add_series("p50_wait");
  auto& p99_series = result.add_series("p99_wait");
  auto& max_series = result.add_series("max_wait");
  auto& violations_series = result.add_series("violations");
  util::TextTable table({"workload", "arrivals", "streams served", "peak",
                         "p50 wait", "p99 wait", "max wait", "violations"});

  std::vector<EngineResult> outcomes;
  outcomes.reserve(std::size(kProcesses));
  for (std::size_t i = 0; i < std::size(kProcesses); ++i) {
    EngineConfig config;
    config.workload = base;
    config.workload.process = kProcesses[i];
    config.delay = delay;
    config.threads = ctx.threads;
    GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
    EngineResult outcome = run_engine(config, policy);

    workload_series.values.push_back(static_cast<double>(i));
    arrivals_series.values.push_back(static_cast<double>(outcome.total_arrivals));
    streams_series.values.push_back(outcome.streams_served);
    peak_series.values.push_back(static_cast<double>(outcome.peak_concurrency));
    p50_series.values.push_back(outcome.wait.p50);
    p99_series.values.push_back(outcome.wait.p99);
    max_series.values.push_back(outcome.wait.max);
    violations_series.values.push_back(
        static_cast<double>(outcome.guarantee_violations));
    table.add_row(to_string(kProcesses[i]), outcome.total_arrivals,
                  outcome.streams_served, outcome.peak_concurrency,
                  util::format_fixed(outcome.wait.p50, 6),
                  util::format_fixed(outcome.wait.p99, 6),
                  util::format_fixed(outcome.wait.max, 6),
                  outcome.guarantee_violations);
    result.ok = result.ok && outcome.guarantee_violations == 0;
    outcomes.push_back(std::move(outcome));
  }
  result.tables.push_back(std::move(table));

  const EngineResult& poisson = outcomes[0];
  const EngineResult& flash = outcomes[2];
  result.ok = result.ok && flash.total_arrivals > poisson.total_arrivals &&
              flash.peak_concurrency > poisson.peak_concurrency;

  // Capacity model: a server provisioned for the Poisson peak meets the
  // flash crowd — every stream start beyond the cap is counted.
  EngineConfig capped;
  capped.workload = base;
  capped.workload.process = ArrivalProcess::kFlashCrowd;
  capped.delay = delay;
  capped.channel_capacity = poisson.peak_concurrency;
  capped.threads = ctx.threads;
  capped.collect_stream_intervals = true;
  GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
  const EngineResult capped_outcome = run_engine(capped, policy);
  result.add_metric("flash_capacity_violations",
                    static_cast<double>(capped_outcome.capacity_violations));
  result.ok = result.ok && capped_outcome.capacity_violations > 0;
  // A concrete channel plan for the same run: the interval-greedy
  // assignment must provision exactly the engine's measured peak.
  const ChannelAssignment plan =
      assign_channels(capped_outcome.stream_intervals);
  result.add_metric("flash_channels_used",
                    static_cast<double>(plan.channels_used));
  result.ok = result.ok && plan.channels_used == capped_outcome.peak_concurrency;
  result.notes.push_back(
      "flash crowd over a Poisson-sized server (capacity " +
      std::to_string(poisson.peak_concurrency) + " channels): " +
      std::to_string(capped_outcome.capacity_violations) +
      " stream starts found it saturated; a channel plan needs " +
      std::to_string(plan.channels_used) + " channels");
  result.notes.push_back(
      "workload ids: 0 = poisson, 1 = constant-rate, 2 = flash-crowd, "
      "3 = diurnal");
  return result;
}
