// Chunked parallel-for used by the sweep benchmarks and the banded DP.
//
// Parameter sweeps over (L, n, lambda) grids are embarrassingly parallel;
// this helper fans the index range out over the persistent
// util::ThreadPool (src/util/thread_pool.h) following the C++ Core
// Guidelines concurrency rules (no shared mutable state, join before
// return). On single-core machines it degrades to a serial loop.
#ifndef SMERGE_UTIL_PARALLEL_H
#define SMERGE_UTIL_PARALLEL_H

#include <cstdint>
#include <functional>

namespace smerge::util {

/// Number of worker threads the library will use by default:
/// `std::thread::hardware_concurrency()` clamped to [1, 64].
[[nodiscard]] unsigned default_thread_count() noexcept;

/// Invokes `body(i)` for every i in [begin, end), distributing contiguous
/// chunks over at most `threads` participants of the shared ThreadPool
/// (the calling thread included). `body` must be safe to call concurrently
/// for distinct i (it must not touch shared mutable state without its own
/// synchronization). Exceptions thrown by `body` propagate to the caller
/// (the first one observed; the remaining chunks still execute).
///
/// With `threads <= 1` or a range smaller than 2 the loop runs inline on
/// the calling thread, which keeps single-core behaviour deterministic;
/// nested calls from inside a pool worker also run inline, so fanning out
/// a sweep whose body itself calls parallel_for never deadlocks.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  unsigned threads = default_thread_count());

class ThreadPool;

/// Same contract as `parallel_for`, but over an explicit pool — the way
/// a core that opted into `pin_workers` routes its fork-joins through
/// `ThreadPool::shared_pinned()` without changing scheduling for the
/// rest of the process.
void parallel_for_on(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                     const std::function<void(std::int64_t)>& body,
                     unsigned threads = default_thread_count());

}  // namespace smerge::util

#endif  // SMERGE_UTIL_PARALLEL_H
