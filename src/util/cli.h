// Minimal command-line flag parser for the example programs and bench
// harnesses. Supports `--name=value` and `--name value` forms plus boolean
// switches (`--verbose`). Unknown flags are an error so typos surface.
#ifndef SMERGE_UTIL_CLI_H
#define SMERGE_UTIL_CLI_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace smerge::util {

/// Parses `argv` into a flag map and positional arguments.
///
/// The parser is intentionally strict: every flag must be registered with a
/// default before parsing, so `--help` output is always complete and any
/// misspelled flag aborts with a clear message instead of being ignored.
class ArgParser {
 public:
  /// `program_summary` is printed at the top of `help()`.
  explicit ArgParser(std::string program_summary);

  /// Registers flags with defaults and a help description.
  void add_int(const std::string& name, std::int64_t def, const std::string& help);
  void add_double(const std::string& name, double def, const std::string& help);
  void add_string(const std::string& name, const std::string& def, const std::string& help);
  void add_bool(const std::string& name, bool def, const std::string& help);

  /// Parses the command line. Returns false (after printing help) when
  /// `--help` was requested. Throws std::invalid_argument on bad input.
  bool parse(int argc, const char* const* argv);

  /// Typed accessors; throw std::out_of_range on unregistered names and
  /// std::invalid_argument when the stored text cannot be converted.
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// True when the flag appeared on the parsed command line (as opposed
  /// to holding its registered default) — the hook for rejecting
  /// contradictory combinations like `--mode` without `--capacity`.
  [[nodiscard]] bool provided(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Renders the usage text.
  [[nodiscard]] std::string help() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string value;  // textual representation
    std::string help;
    std::string default_text;
    bool provided = false;  // appeared on the command line
  };

  void add_flag(const std::string& name, Kind kind, std::string def, const std::string& help);
  [[nodiscard]] const Flag& flag(const std::string& name) const;

  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace smerge::util

#endif  // SMERGE_UTIL_CLI_H
