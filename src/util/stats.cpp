#include "util/stats.h"

#include <cmath>
#include <stdexcept>

namespace smerge::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (!(q >= 0.0) || q > 1.0) {
    throw std::invalid_argument("quantile_sorted: q must lie in [0, 1]");
  }
  if (sorted.empty()) return 0.0;
  const auto n = sorted.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace smerge::util
