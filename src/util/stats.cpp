#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smerge::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0) || !(q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must lie in (0, 1)");
  }
}

P2Quantile::P2Quantile(const P2State& state) : q_(state.q), n_(state.n) {
  if (!(state.q > 0.0) || !(state.q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must lie in (0, 1)");
  }
  std::copy(state.heights, state.heights + 5, heights_);
  std::copy(state.positions, state.positions + 5, positions_);
  std::copy(state.desired, state.desired + 5, desired_);
  std::copy(state.increments, state.increments + 5, increments_);
}

P2State P2Quantile::state() const noexcept {
  P2State s;
  s.q = q_;
  s.n = n_;
  std::copy(heights_, heights_ + 5, s.heights);
  std::copy(positions_, positions_ + 5, s.positions);
  std::copy(desired_, desired_ + 5, s.desired);
  std::copy(increments_, increments_ + 5, s.increments);
  return s;
}

void P2Quantile::add(double x) noexcept {
  if (n_ < 5) {
    heights_[n_] = x;
    ++n_;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * q_;
      desired_[2] = 1.0 + 4.0 * q_;
      desired_[3] = 3.0 + 2.0 * q_;
      desired_[4] = 5.0;
      increments_[0] = 0.0;
      increments_[1] = q_ / 2.0;
      increments_[2] = q_;
      increments_[3] = (1.0 + q_) / 2.0;
      increments_[4] = 1.0;
    }
    return;
  }
  ++n_;

  // Locate the cell the observation falls into; the extreme markers
  // absorb out-of-range observations.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Nudge the three interior markers toward their desired positions,
  // adjusting heights by the piecewise-parabolic (P²) prediction and
  // falling back to linear when the parabola would leave the bracket.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right = positions_[i + 1] - positions_[i];
    const double left = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      const double parabolic =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) / right +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) / (-left));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = sign > 0.0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::estimate() const noexcept {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact nearest-rank on the handful of retained samples. The count
    // is clamped so the optimizer can see the bound.
    const int k = static_cast<int>(n_ < 5 ? n_ : 5);
    double sorted[5];
    std::copy(heights_, heights_ + k, sorted);
    // Tiny insertion sort: std::sort on the 5-slot buffer trips gcc's
    // array-bounds analysis through its 16-element insertion threshold.
    for (int i = 1; i < k; ++i) {
      const double x = sorted[i];
      int j = i;
      while (j > 0 && sorted[j - 1] > x) {
        sorted[j] = sorted[j - 1];
        --j;
      }
      sorted[j] = x;
    }
    const int rank =
        static_cast<int>(std::ceil(q_ * static_cast<double>(k)));
    return sorted[std::clamp(rank, 1, k) - 1];
  }
  return heights_[2];
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (!(q >= 0.0) || q > 1.0) {
    throw std::invalid_argument("quantile_sorted: q must lie in [0, 1]");
  }
  if (sorted.empty()) return 0.0;
  const auto n = sorted.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace smerge::util
