// Deterministic splittable random numbers for the simulation engine.
//
// The standard <random> distributions are implementation-defined (their
// draw sequences differ across standard libraries), so a gcc and a clang
// build of the same simulation would disagree. The simulator instead uses
// SplitMix64 — a tiny, well-mixed 64-bit generator with an explicit
// `split` operation: `rng.split(key)` derives an independent substream
// from the *initial* seed and the key, regardless of how many values the
// parent has produced. The engine gives every media object its own
// substream, which is what makes a run reproducible from one seed no
// matter how objects are sharded across threads.
#ifndef SMERGE_UTIL_RNG_H
#define SMERGE_UTIL_RNG_H

#include <cstdint>

namespace smerge::util {

/// SplitMix64 (Steele, Lea, Flood 2014): one xor-shift-multiply mix per
/// output, period 2^64, passes BigCrush. Integer and uniform-double
/// draws are pure integer/IEEE arithmetic and therefore bit-identical
/// across compilers and platforms; `next_exponential` goes through
/// libm's `log`, so those variates are bit-identical across compilers
/// *on the same C library* (gcc and clang on one host agree; a
/// different libm may differ in the last ulp).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : seed_(seed), state_(seed) {}

  /// Next 64 uniform bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1), using the top 53 bits.
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Exponential variate with the given mean (inverse-CDF method; the
  /// argument of log is in (0, 1], so the result is always finite).
  [[nodiscard]] double next_exponential(double mean) noexcept;

  /// An independent substream keyed by `key`, derived from the initial
  /// seed only — splitting is insensitive to the parent's position.
  [[nodiscard]] SplitMix64 split(std::uint64_t key) const noexcept;

  /// The seed this generator was constructed with.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Current stream position — with `seed()`, the complete generator
  /// state, so a checkpoint can resume a substream mid-stream.
  [[nodiscard]] std::uint64_t state() const noexcept { return state_; }

  /// Reconstructs a generator at an exact (seed, state) position, as
  /// captured by `seed()`/`state()`: the resumed generator's draw
  /// sequence and `split` substreams are bit-identical to the original.
  [[nodiscard]] static SplitMix64 resume(std::uint64_t seed,
                                         std::uint64_t state) noexcept {
    SplitMix64 rng(seed);
    rng.state_ = state;
    return rng;
  }

 private:
  std::uint64_t seed_;
  std::uint64_t state_;
};

}  // namespace smerge::util

#endif  // SMERGE_UTIL_RNG_H
