#include "util/simd.h"

#include <atomic>

namespace smerge::util::simd {

namespace {

std::atomic<bool> g_force_scalar{false};

}  // namespace

ScanResult prefix_scan_scalar(const std::int32_t* deltas, std::size_t n,
                              std::int64_t running,
                              std::int64_t best) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    running += deltas[i];
    best = bmax(best, running);
  }
  return {running, best};
}

std::int64_t sum_scalar(const std::int32_t* deltas, std::size_t n) noexcept {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += deltas[i];
  return total;
}

bool strictly_increasing_scalar(const double* x, std::size_t n) noexcept {
  for (std::size_t i = 1; i < n; ++i) {
    if (!(x[i - 1] < x[i])) return false;
  }
  return true;
}

#if defined(__GNUC__) || defined(__clang__)
#define SMERGE_SIMD_VECTOR 1
#endif

#if defined(SMERGE_SIMD_VECTOR)

namespace {

typedef std::int64_t I64x4 __attribute__((vector_size(32)));
typedef double F64x4 __attribute__((vector_size(32)));

// One kernel body, stamped out once at the build baseline (the
// compiler lowers the 256-bit vectors to whatever the target has —
// SSE2 pairs on stock x86-64, NEON pairs on AArch64) and once more
// with an AVX2 target attribute on x86-64 so the runtime dispatcher
// can use full-width registers without raising the build baseline.
//
// Block step for the prefix scan: convert 4 deltas to int64 lanes,
// form the in-block inclusive prefix sums with two shift-in-zero adds
// (a log-step Hillis–Steele scan), take the horizontal max of the
// four prefixes, then fold it into the running best. All integer, so
// the result is exactly the scalar loop's.
#define SMERGE_SIMD_DEFINE_KERNELS(SUFFIX, ATTRS)                            \
  ATTRS ScanResult prefix_scan_##SUFFIX(                                     \
      const std::int32_t* deltas, std::size_t n, std::int64_t running,       \
      std::int64_t best) noexcept {                                          \
    const I64x4 zero = {0, 0, 0, 0};                                         \
    std::size_t i = 0;                                                       \
    for (; i + 4 <= n; i += 4) {                                             \
      I64x4 v = {deltas[i], deltas[i + 1], deltas[i + 2], deltas[i + 3]};    \
      v += __builtin_shufflevector(v, zero, 4, 0, 1, 2);                     \
      v += __builtin_shufflevector(v, zero, 4, 5, 0, 1);                     \
      const I64x4 r1 = __builtin_shufflevector(v, v, 1, 0, 3, 2);            \
      const I64x4 c1 = v > r1;                                               \
      const I64x4 m1 = (v & c1) | (r1 & ~c1);                                \
      const I64x4 r2 = __builtin_shufflevector(m1, m1, 2, 3, 0, 1);          \
      const I64x4 c2 = m1 > r2;                                              \
      const I64x4 m2 = (m1 & c2) | (r2 & ~c2);                               \
      best = bmax(best, running + m2[0]);                                    \
      running += v[3];                                                       \
    }                                                                        \
    for (; i < n; ++i) {                                                     \
      running += deltas[i];                                                  \
      best = bmax(best, running);                                            \
    }                                                                        \
    return {running, best};                                                  \
  }                                                                          \
                                                                             \
  ATTRS std::int64_t sum_##SUFFIX(const std::int32_t* deltas,                \
                                  std::size_t n) noexcept {                  \
    I64x4 acc = {0, 0, 0, 0};                                                \
    std::size_t i = 0;                                                       \
    for (; i + 4 <= n; i += 4) {                                             \
      const I64x4 v = {deltas[i], deltas[i + 1], deltas[i + 2],              \
                       deltas[i + 3]};                                       \
      acc += v;                                                              \
    }                                                                        \
    std::int64_t total = acc[0] + acc[1] + acc[2] + acc[3];                  \
    for (; i < n; ++i) total += deltas[i];                                   \
    return total;                                                            \
  }                                                                          \
                                                                             \
  ATTRS bool strictly_increasing_##SUFFIX(const double* x,                   \
                                          std::size_t n) noexcept {          \
    std::size_t i = 0;                                                       \
    if (n >= 5) {                                                            \
      for (; i + 5 <= n; i += 4) {                                           \
        const F64x4 a = {x[i], x[i + 1], x[i + 2], x[i + 3]};                \
        const F64x4 b = {x[i + 1], x[i + 2], x[i + 3], x[i + 4]};            \
        const auto lt = a < b;                                               \
        if ((lt[0] & lt[1] & lt[2] & lt[3]) != -1) return false;             \
      }                                                                      \
    }                                                                        \
    for (; i + 1 < n; ++i) {                                                 \
      if (!(x[i] < x[i + 1])) return false;                                  \
    }                                                                        \
    return true;                                                             \
  }

SMERGE_SIMD_DEFINE_KERNELS(v128, )

#if defined(__x86_64__) && !defined(__AVX2__)
#define SMERGE_SIMD_AVX2_CLONE 1
SMERGE_SIMD_DEFINE_KERNELS(avx2, __attribute__((target("avx2"))))
#endif

#undef SMERGE_SIMD_DEFINE_KERNELS

using ScanFn = ScanResult (*)(const std::int32_t*, std::size_t, std::int64_t,
                              std::int64_t) noexcept;
using SumFn = std::int64_t (*)(const std::int32_t*, std::size_t) noexcept;
using IncFn = bool (*)(const double*, std::size_t) noexcept;

struct Dispatch {
  ScanFn scan;
  SumFn sum;
  IncFn increasing;
  const char* name;
  unsigned lanes;
};

Dispatch pick_dispatch() noexcept {
#if defined(SMERGE_SIMD_AVX2_CLONE)
  if (__builtin_cpu_supports("avx2")) {
    return {&prefix_scan_avx2, &sum_avx2, &strictly_increasing_avx2, "avx2",
            4};
  }
#elif defined(__AVX2__)
  // Built with -march=x86-64-v3 or wider: the baseline kernel already
  // lowers to full AVX2 registers, no clone needed.
  return {&prefix_scan_v128, &sum_v128, &strictly_increasing_v128, "avx2", 4};
#endif
  return {&prefix_scan_v128, &sum_v128, &strictly_increasing_v128, "v128", 2};
}

const Dispatch g_dispatch = pick_dispatch();

}  // namespace

ScanResult prefix_scan(const std::int32_t* deltas, std::size_t n,
                       std::int64_t running, std::int64_t best) noexcept {
  if (g_force_scalar.load(std::memory_order_relaxed)) {
    return prefix_scan_scalar(deltas, n, running, best);
  }
  return g_dispatch.scan(deltas, n, running, best);
}

std::int64_t sum(const std::int32_t* deltas, std::size_t n) noexcept {
  if (g_force_scalar.load(std::memory_order_relaxed)) {
    return sum_scalar(deltas, n);
  }
  return g_dispatch.sum(deltas, n);
}

bool strictly_increasing(const double* x, std::size_t n) noexcept {
  if (g_force_scalar.load(std::memory_order_relaxed)) {
    return strictly_increasing_scalar(x, n);
  }
  return g_dispatch.increasing(x, n);
}

const char* active_kernel() noexcept {
  if (g_force_scalar.load(std::memory_order_relaxed)) return "scalar";
  return g_dispatch.name;
}

unsigned lanes() noexcept {
  if (g_force_scalar.load(std::memory_order_relaxed)) return 1;
  return g_dispatch.lanes;
}

#else  // !SMERGE_SIMD_VECTOR

ScanResult prefix_scan(const std::int32_t* deltas, std::size_t n,
                       std::int64_t running, std::int64_t best) noexcept {
  return prefix_scan_scalar(deltas, n, running, best);
}

std::int64_t sum(const std::int32_t* deltas, std::size_t n) noexcept {
  return sum_scalar(deltas, n);
}

bool strictly_increasing(const double* x, std::size_t n) noexcept {
  return strictly_increasing_scalar(x, n);
}

const char* active_kernel() noexcept { return "scalar"; }

unsigned lanes() noexcept { return 1; }

#endif  // SMERGE_SIMD_VECTOR

void force_scalar(bool on) noexcept {
  g_force_scalar.store(on, std::memory_order_relaxed);
}

bool scalar_forced() noexcept {
  return g_force_scalar.load(std::memory_order_relaxed);
}

}  // namespace smerge::util::simd
