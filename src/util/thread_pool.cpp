#include "util/thread_pool.h"

#include <algorithm>

#include "util/parallel.h"

namespace smerge::util {

namespace {

// Set for the lifetime of every pool worker thread; `run` checks it to
// execute nested fork-joins inline.
thread_local bool t_on_pool_worker = false;

// Set while a thread is inside `run`: a nested call from the
// participating caller must go inline *before* touching run_mutex_
// (try_lock on a mutex the thread already owns is undefined behavior).
thread_local bool t_in_fork_join = false;

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  // default - 1 workers so caller + workers match the hardware, but
  // always at least one worker: single-core hosts then still exercise
  // the real cross-thread path when explicitly asked for threads > 1
  // (with threads = 1 everything is inline anyway).
  static ThreadPool pool(std::max(1u, default_thread_count() - 1));
  return pool;
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_pool_worker; }

void ThreadPool::worker_loop() {
  t_on_pool_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    // Participate only while the job has slots left; a worker arriving
    // after the budget is spent (or the job finished) goes back to sleep.
    unsigned slots = job->slots.load(std::memory_order_relaxed);
    bool joined = false;
    while (slots > 0 &&
           !(joined = job->slots.compare_exchange_weak(slots, slots - 1))) {
    }
    if (joined) work_chunks(*job);
  }
}

void ThreadPool::work_chunks(Job& job) {
  const std::int64_t total = job.end - job.begin;
  for (;;) {
    const std::int64_t lo = job.cursor.fetch_add(job.grain);
    if (lo >= job.end) break;
    const std::int64_t hi = std::min(lo + job.grain, job.end);
    try {
      for (std::int64_t i = lo; i < hi; ++i) (*job.body)(i);
    } catch (...) {
      const std::scoped_lock lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done.fetch_add(hi - lo) + (hi - lo) == total) {
      // Last chunk: wake the caller. Taking the mutex orders this
      // notify after the caller entered its predicate wait.
      const std::scoped_lock lock(mutex_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::run(std::int64_t begin, std::int64_t end, std::int64_t grain,
                     unsigned max_threads,
                     const std::function<void(std::int64_t)>& body) {
  if (begin >= end) return;
  const std::int64_t count = end - begin;
  const auto inline_loop = [&] {
    for (std::int64_t i = begin; i < end; ++i) body(i);
  };
  if (max_threads <= 1 || count < 2 || workers_.empty() || t_on_pool_worker ||
      t_in_fork_join) {
    inline_loop();
    return;
  }
  // One fork-join region at a time; a caller concurrent with another
  // thread's region runs inline rather than queueing behind it. (A
  // nested call from this thread's own region was already diverted by
  // t_in_fork_join above.)
  const std::unique_lock run_lock(run_mutex_, std::try_to_lock);
  if (!run_lock.owns_lock()) {
    inline_loop();
    return;
  }
  struct FlagGuard {
    ~FlagGuard() { t_in_fork_join = false; }
  } flag_guard;
  t_in_fork_join = true;

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = std::max<std::int64_t>(1, grain);
  job->cursor.store(begin, std::memory_order_relaxed);
  job->slots.store(
      std::min(max_threads, static_cast<unsigned>(workers_.size()) + 1) - 1,
      std::memory_order_relaxed);
  job->body = &body;
  {
    const std::scoped_lock lock(mutex_);
    job_ = job;
    ++epoch_;
  }
  cv_work_.notify_all();
  work_chunks(*job);  // the caller is always a participant
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return job->done.load() == count; });
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace smerge::util
