#include "util/thread_pool.h"

#include <algorithm>

#include "util/parallel.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace smerge::util {

namespace {

// Set for the lifetime of every pool worker thread; `run` checks it to
// execute nested fork-joins inline.
thread_local bool t_on_pool_worker = false;

// Set while a thread is inside `run`: a nested call from the
// participating caller must go inline *before* touching run_mutex_
// (try_lock on a mutex the thread already owns is undefined behavior).
thread_local bool t_in_fork_join = false;

}  // namespace

ThreadPool::ThreadPool(unsigned workers)
    : ThreadPool(ThreadPoolConfig{workers, false}) {}

ThreadPool::ThreadPool(const ThreadPoolConfig& config)
    : pin_requested_(config.pin_workers) {
  workers_.reserve(config.workers);
  for (unsigned w = 0; w < config.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
#ifdef __linux__
    if (config.pin_workers) {
      // Worker w → CPU (w + 1) % hw, leaving CPU 0 for the caller
      // thread. Affinity is set from here on the spawned thread's
      // handle so pinned_workers() is exact once the constructor
      // returns. Failure (cgroup cpuset, exotic schedulers) just
      // leaves the worker floating.
      const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET((w + 1) % hw, &set);
      if (pthread_setaffinity_np(workers_.back().native_handle(), sizeof(set),
                                 &set) == 0) {
        ++pinned_workers_;
      }
    }
#endif
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  // default - 1 workers so caller + workers match the hardware, but
  // always at least one worker: single-core hosts then still exercise
  // the real cross-thread path when explicitly asked for threads > 1
  // (with threads = 1 everything is inline anyway).
  static ThreadPool pool(std::max(1u, default_thread_count() - 1));
  return pool;
}

ThreadPool& ThreadPool::shared_pinned() {
  static ThreadPool pool(
      ThreadPoolConfig{std::max(1u, default_thread_count() - 1), true});
  return pool;
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_pool_worker; }

void ThreadPool::worker_loop(unsigned index) {
  t_on_pool_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    if (job->static_mode) {
      // Residue-class assignment: this worker owns class index + 1
      // (class 0 is the caller); workers beyond the participant count
      // go straight back to sleep.
      if (index + 1 < job->participants) work_class(*job, index + 1);
      continue;
    }
    // Participate only while the job has slots left; a worker arriving
    // after the budget is spent (or the job finished) goes back to sleep.
    unsigned slots = job->slots.load(std::memory_order_relaxed);
    bool joined = false;
    while (slots > 0 &&
           !(joined = job->slots.compare_exchange_weak(slots, slots - 1))) {
    }
    if (joined) work_chunks(*job);
  }
}

void ThreadPool::work_chunks(Job& job) {
  const std::int64_t total = job.end - job.begin;
  for (;;) {
    const std::int64_t lo = job.cursor.fetch_add(job.grain);
    if (lo >= job.end) break;
    const std::int64_t hi = std::min(lo + job.grain, job.end);
    try {
      for (std::int64_t i = lo; i < hi; ++i) (*job.body)(i);
    } catch (...) {
      const std::scoped_lock lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done.fetch_add(hi - lo) + (hi - lo) == total) {
      // Last chunk: wake the caller. Taking the mutex orders this
      // notify after the caller entered its predicate wait.
      const std::scoped_lock lock(mutex_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::work_class(Job& job, unsigned cls) {
  const std::int64_t total = job.end - job.begin;
  const auto stride = static_cast<std::int64_t>(job.participants);
  const auto offset = static_cast<std::int64_t>(cls);
  if (offset >= total) return;
  // The whole class counts as done even if the body throws (remaining
  // class members are skipped); the join below must always complete.
  const std::int64_t class_size = (total - offset + stride - 1) / stride;
  try {
    for (std::int64_t i = job.begin + offset; i < job.end; i += stride) {
      (*job.body)(i);
    }
  } catch (...) {
    const std::scoped_lock lock(mutex_);
    if (!job.error) job.error = std::current_exception();
  }
  if (job.done.fetch_add(class_size) + class_size == total) {
    const std::scoped_lock lock(mutex_);
    cv_done_.notify_all();
  }
}

void ThreadPool::run_static(std::int64_t tasks, unsigned max_threads,
                            const std::function<void(std::int64_t)>& body) {
  if (tasks <= 0) return;
  const auto inline_loop = [&] {
    for (std::int64_t i = 0; i < tasks; ++i) body(i);
  };
  if (max_threads <= 1 || tasks < 2 || workers_.empty() || t_on_pool_worker ||
      t_in_fork_join) {
    inline_loop();
    return;
  }
  const std::unique_lock run_lock(run_mutex_, std::try_to_lock);
  if (!run_lock.owns_lock()) {
    inline_loop();
    return;
  }
  struct FlagGuard {
    ~FlagGuard() { t_in_fork_join = false; }
  } flag_guard;
  t_in_fork_join = true;

  auto job = std::make_shared<Job>();
  job->begin = 0;
  job->end = tasks;
  job->static_mode = true;
  job->participants =
      std::min(max_threads, static_cast<unsigned>(workers_.size()) + 1);
  job->body = &body;
  {
    const std::scoped_lock lock(mutex_);
    job_ = job;
    ++epoch_;
  }
  cv_work_.notify_all();
  work_class(*job, 0);  // the caller owns class 0
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return job->done.load() == tasks; });
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::run(std::int64_t begin, std::int64_t end, std::int64_t grain,
                     unsigned max_threads,
                     const std::function<void(std::int64_t)>& body) {
  if (begin >= end) return;
  const std::int64_t count = end - begin;
  const auto inline_loop = [&] {
    for (std::int64_t i = begin; i < end; ++i) body(i);
  };
  if (max_threads <= 1 || count < 2 || workers_.empty() || t_on_pool_worker ||
      t_in_fork_join) {
    inline_loop();
    return;
  }
  // One fork-join region at a time; a caller concurrent with another
  // thread's region runs inline rather than queueing behind it. (A
  // nested call from this thread's own region was already diverted by
  // t_in_fork_join above.)
  const std::unique_lock run_lock(run_mutex_, std::try_to_lock);
  if (!run_lock.owns_lock()) {
    inline_loop();
    return;
  }
  struct FlagGuard {
    ~FlagGuard() { t_in_fork_join = false; }
  } flag_guard;
  t_in_fork_join = true;

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = std::max<std::int64_t>(1, grain);
  job->cursor.store(begin, std::memory_order_relaxed);
  job->slots.store(
      std::min(max_threads, static_cast<unsigned>(workers_.size()) + 1) - 1,
      std::memory_order_relaxed);
  job->body = &body;
  {
    const std::scoped_lock lock(mutex_);
    job_ = job;
    ++epoch_;
  }
  cv_work_.notify_all();
  work_chunks(*job);  // the caller is always a participant
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return job->done.load() == count; });
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace smerge::util
