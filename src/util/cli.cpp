#include "util/cli.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace smerge::util {

ArgParser::ArgParser(std::string program_summary)
    : summary_(std::move(program_summary)) {}

void ArgParser::add_flag(const std::string& name, Kind kind, std::string def,
                         const std::string& help) {
  if (name.empty() || name.front() == '-') {
    throw std::invalid_argument("ArgParser: flag names are registered without dashes");
  }
  Flag f{kind, def, help, def};
  if (!flags_.emplace(name, std::move(f)).second) {
    throw std::invalid_argument("ArgParser: duplicate flag --" + name);
  }
}

void ArgParser::add_int(const std::string& name, std::int64_t def, const std::string& help) {
  add_flag(name, Kind::kInt, std::to_string(def), help);
}

void ArgParser::add_double(const std::string& name, double def, const std::string& help) {
  std::ostringstream os;
  os << def;
  add_flag(name, Kind::kDouble, os.str(), help);
}

void ArgParser::add_string(const std::string& name, const std::string& def,
                           const std::string& help) {
  add_flag(name, Kind::kString, def, help);
}

void ArgParser::add_bool(const std::string& name, bool def, const std::string& help) {
  add_flag(name, Kind::kBool, def ? "true" : "false", help);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::optional<std::string> value;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag --" + name + " (see --help)");
    }
    Flag& f = it->second;
    if (!value.has_value()) {
      if (f.kind == Kind::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::invalid_argument("flag --" + name + " requires a value");
      }
    }
    f.value = *value;
    f.provided = true;
  }
  return true;
}

bool ArgParser::provided(const std::string& name) const {
  return flag(name).provided;
}

const ArgParser::Flag& ArgParser::flag(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::out_of_range("ArgParser: flag --" + name + " was never registered");
  }
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string& text = flag(name).value;
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + text);
  }
  return out;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& text = flag(name).value;
  try {
    std::size_t pos = 0;
    double out = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing junk");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + ": not a number: " + text);
  }
}

std::string ArgParser::get_string(const std::string& name) const {
  return flag(name).value;
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string& text = flag(name).value;
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + text);
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << summary_ << "\n\nFlags:\n";
  for (const auto& [name, f] : flags_) {
    os << "  --" << name << " (default: " << f.default_text << ")\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace smerge::util
