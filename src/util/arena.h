// Per-thread monotonic arenas backing the drain-time scratch
// allocations of the serving hot path.
//
// Every ServerCore::drain() used to heap-allocate its active-shard list
// and merged dirty list, and every posted-batch sort check needed a
// fresh key buffer — small, short-lived vectors whose malloc/free pairs
// show up at millions of arrivals per second. A MonotonicArena turns
// each of those into a pointer bump: allocations only ever grow the
// high-water mark, and an ArenaScope rewinds the mark wholesale when
// the drain (or the per-shard collection step) leaves.
//
// Lifetime rules (the contract DESIGN.md documents):
//  * `thread_arena()` is one arena per thread — the driver thread and
//    every pool worker each own theirs, so a pinned shard's scratch is
//    allocated, reused and rewound on the same core it is consumed on
//    (no cross-thread traffic, no sharing, no locks);
//  * arena memory is only valid while the ArenaScope that covers its
//    allocation is alive; scopes nest (a worker-side scope inside the
//    driver's drain scope rewinds independently because the arenas are
//    distinct threads');
//  * chunks are retained across rewinds, so steady-state drains do not
//    touch the system allocator at all.
#ifndef SMERGE_UTIL_ARENA_H
#define SMERGE_UTIL_ARENA_H

#include <cstddef>
#include <memory>
#include <vector>

namespace smerge::util {

/// Bump allocator over a chain of growing chunks. Not thread-safe: one
/// arena belongs to one thread (see `thread_arena`).
class MonotonicArena {
 public:
  /// A rewind point: everything allocated after `mark()` is released by
  /// `rewind()` in O(chunks), with chunk storage retained for reuse.
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    if (align == 0) align = 1;
    while (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      const std::size_t offset = (c.used + align - 1) & ~(align - 1);
      if (offset + bytes <= c.size) {
        c.used = offset + bytes;
        return c.data.get() + offset;
      }
      ++active_;
      if (active_ < chunks_.size()) chunks_[active_].used = 0;
    }
    const std::size_t grown =
        chunks_.empty() ? kFirstChunk : chunks_.back().size * 2;
    const std::size_t size = grown > bytes + align ? grown : bytes + align;
    chunks_.push_back({std::make_unique<std::byte[]>(size), size, 0});
    active_ = chunks_.size() - 1;
    Chunk& c = chunks_.back();
    const std::size_t offset = (align - 1) & ~(align - 1);
    c.used = offset + bytes;
    return c.data.get() + offset;
  }

  [[nodiscard]] Mark mark() const noexcept {
    if (chunks_.empty()) return {};
    return {active_, chunks_[active_].used};
  }

  void rewind(const Mark& m) noexcept {
    if (chunks_.empty()) return;
    active_ = m.chunk < chunks_.size() ? m.chunk : chunks_.size() - 1;
    chunks_[active_].used = m.used;
    for (std::size_t i = active_ + 1; i < chunks_.size(); ++i) {
      chunks_[i].used = 0;
    }
  }

  /// Total bytes reserved across all chunks (diagnostics).
  [[nodiscard]] std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  static constexpr std::size_t kFirstChunk = std::size_t{1} << 16;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
};

/// RAII rewind: declare the scope before any arena-backed container so
/// the containers are destroyed first, then the scope releases their
/// storage in one bump-pointer move.
class ArenaScope {
 public:
  explicit ArenaScope(MonotonicArena& arena)
      : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  MonotonicArena& arena_;
  MonotonicArena::Mark mark_;
};

/// Standard allocator over an arena; `deallocate` is a no-op (the
/// covering ArenaScope releases everything at once).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  [[nodiscard]] MonotonicArena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }

 private:
  MonotonicArena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// This thread's arena (lazily created, lives for the thread). Pool
/// workers each get their own, which is what makes drain scratch stay
/// resident on the worker's core under `pin_workers`.
[[nodiscard]] inline MonotonicArena& thread_arena() noexcept {
  static thread_local MonotonicArena arena;
  return arena;
}

}  // namespace smerge::util

#endif  // SMERGE_UTIL_ARENA_H
