// Minimal streaming JSON writer (and validator) for the benchmark
// harness.
//
// The writer produces machine-readable `BENCH_*.json` trajectories so
// successive PRs can diff benchmark results; the validator lets tests
// check emitted documents without a third-party JSON dependency. Both
// cover exactly the subset of RFC 8259 this project emits: objects,
// arrays, strings, finite numbers, booleans and null.
#ifndef SMERGE_UTIL_JSON_WRITER_H
#define SMERGE_UTIL_JSON_WRITER_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace smerge::util {

/// Escapes a string for inclusion inside JSON quotes (quotes, backslash,
/// control characters; everything else passes through as UTF-8).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Builds a JSON document incrementally. Scope methods must be balanced;
/// the writer inserts commas and (two-space) indentation automatically.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("fig01");
///   w.key("points").begin_array().value(1.0).value(2.5).end_array();
///   w.end_object();
///   std::string doc = w.str();
///
/// Misuse (a key outside an object, unbalanced scopes at `str()`, two
/// keys in a row) throws std::logic_error so harness bugs fail loudly
/// instead of emitting unparseable files.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next call must produce its value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);  ///< non-finite values render as null
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(unsigned number) {
    return value(static_cast<std::uint64_t>(number));
  }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The finished document. Throws std::logic_error if scopes are open.
  [[nodiscard]] std::string str() const;

 private:
  enum class Scope { kObject, kArray };
  void begin_value();  // comma/indent bookkeeping shared by all emitters

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> had_items_;  // parallel to scopes_
  bool key_pending_ = false;     // a key was written, value expected
  bool done_ = false;            // a complete top-level value exists
};

/// Validates that `text` is one complete JSON value (with the usual
/// whitespace allowances). Returns std::nullopt on success, otherwise a
/// human-readable description of the first error with its byte offset.
[[nodiscard]] std::optional<std::string> json_error(std::string_view text);

}  // namespace smerge::util

#endif  // SMERGE_UTIL_JSON_WRITER_H
