// Persistent worker pool backing util::parallel_for.
//
// The original parallel_for spawned fresh std::threads per call, which
// is fine for a handful of coarse sweep points but ruinous for the
// banded DP's per-wavefront fan-out (hundreds of dispatches per solve).
// This pool keeps its workers alive for the process lifetime and hands
// them contiguous index chunks through one atomic cursor, so a dispatch
// costs a mutex bump and a condition-variable broadcast instead of
// thread creation — workers share one std::function per fork-join
// region (no per-chunk or per-worker callable copies).
//
// Concurrency contract (C++ Core Guidelines style):
//  * one fork-join region at a time; a second concurrent `run` from
//    another thread degrades to an inline loop rather than blocking;
//  * `run` issued from inside a pool worker executes inline, so nested
//    parallel_for never deadlocks or oversubscribes;
//  * exceptions from the body propagate to the caller (first one
//    observed; remaining chunks still execute).
#ifndef SMERGE_UTIL_THREAD_POOL_H
#define SMERGE_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace smerge::util {

struct ThreadPoolConfig {
  /// Persistent worker threads (0 is valid: every `run` is then inline).
  unsigned workers = 0;
  /// Pin worker w to CPU (w + 1) % hardware_concurrency at spawn
  /// (Linux `pthread_setaffinity_np`; a no-op elsewhere). CPU 0 is left
  /// for the caller thread so the driver and the first worker do not
  /// contend on single-digit-core hosts. Best-effort: a failed affinity
  /// call leaves the worker floating and is only reflected in
  /// `pinned_workers()`.
  bool pin_workers = false;
};

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is valid: every `run` is then inline).
  explicit ThreadPool(unsigned workers);
  explicit ThreadPool(const ThreadPoolConfig& config);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, lazily created with
  /// `max(1, default_thread_count() - 1)` workers (the caller of `run`
  /// participates, so total parallelism matches the hardware; the floor
  /// keeps the cross-thread path reachable on single-core hosts).
  static ThreadPool& shared();

  /// The process-wide core-pinned pool: same worker count as
  /// `shared()`, spawned lazily on first use with
  /// `ThreadPoolConfig::pin_workers` set. Kept separate from the
  /// floating pool so opting one ServerCore into pinning never changes
  /// scheduling for the rest of the process.
  static ThreadPool& shared_pinned();

  /// Number of persistent worker threads.
  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Whether this pool was asked to pin its workers.
  [[nodiscard]] bool pin_requested() const noexcept { return pin_requested_; }

  /// Workers whose affinity call actually succeeded (0 on non-Linux or
  /// when the scheduler refuses; counted synchronously at spawn).
  [[nodiscard]] unsigned pinned_workers() const noexcept {
    return pinned_workers_;
  }

  /// True when the calling thread is one of this process's pool workers
  /// (any pool), in which case `run` executes inline.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// Invokes `body(i)` for every i in [begin, end), distributing chunks
  /// of `grain` indices over at most `max_threads` participants
  /// (including the calling thread, which always works too). Blocks
  /// until the range is complete; rethrows the first exception thrown
  /// by `body`. Runs inline when `max_threads <= 1`, the range has
  /// fewer than two indices, the pool has no workers, or the call is
  /// nested inside a pool worker.
  void run(std::int64_t begin, std::int64_t end, std::int64_t grain,
           unsigned max_threads, const std::function<void(std::int64_t)>& body);

  /// Like `run` over [0, tasks), but with a *stable* task→participant
  /// map instead of dynamic chunk stealing: with P participants
  /// (min(max_threads, workers + 1)), task i always executes on
  /// participant i % P — class 0 is the calling thread, class c > 0 is
  /// worker c - 1. Sharded callers use this so a shard's mailbox ring,
  /// dirty list and arena scratch are touched by the same (pinned)
  /// worker on every drain. Same inline-degradation rules as `run`;
  /// if the body throws, the remaining tasks of that class are skipped
  /// (other classes still complete) and the first exception rethrows.
  void run_static(std::int64_t tasks, unsigned max_threads,
                  const std::function<void(std::int64_t)>& body);

 private:
  // One fork-join region. Heap-allocated and shared with the workers so
  // a worker waking late mutates a completed job's counters harmlessly
  // instead of racing the next job's setup.
  struct Job {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    std::atomic<std::int64_t> cursor{0};  ///< next unclaimed index
    std::atomic<std::int64_t> done{0};    ///< indices fully executed
    std::atomic<unsigned> slots{0};       ///< worker participation budget
    bool static_mode = false;   ///< run_static: residue-class assignment
    unsigned participants = 0;  ///< static mode: class count (caller = 0)
    const std::function<void(std::int64_t)>* body = nullptr;
    std::exception_ptr error;  ///< first exception, guarded by pool mutex
  };

  void worker_loop(unsigned index);
  void work_chunks(Job& job);
  void work_class(Job& job, unsigned cls);

  std::mutex mutex_;
  std::condition_variable cv_work_;   ///< new job / shutdown
  std::condition_variable cv_done_;   ///< job completion
  std::shared_ptr<Job> job_;          ///< current job, guarded by mutex_
  std::uint64_t epoch_ = 0;           ///< bumped per job, guarded by mutex_
  bool stop_ = false;
  std::mutex run_mutex_;              ///< serializes concurrent callers
  std::vector<std::thread> workers_;
  bool pin_requested_ = false;
  unsigned pinned_workers_ = 0;  ///< set once in the constructor
};

}  // namespace smerge::util

#endif  // SMERGE_UTIL_THREAD_POOL_H
