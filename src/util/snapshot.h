// Versioned, checksummed binary state serialization — the substrate of
// crash consistency (server checkpoints, the admission WAL, policy and
// plan state round-trips).
//
// A snapshot is a *frame*: a fixed magic, a format version, a schema
// string naming the payload layout (e.g. "smerge-ckpt-v1"), the payload
// length, the payload itself, and a trailing FNV-1a 64 checksum over
// everything before it. `SnapshotWriter` accumulates a payload through
// typed little-endian appends and seals it with `frame(schema)`;
// `SnapshotReader::open` validates the whole envelope (magic, version,
// schema, length, checksum) before a single payload byte is interpreted,
// and every typed read is bounds-checked. Corruption — a flipped byte, a
// truncated file, a wrong schema — surfaces as a structured
// `SnapshotError`, never as undefined behaviour: a reader cannot be made
// to read past its span, and vector reads cap their element counts by
// the bytes actually remaining.
//
// Encodings are bit-exact and platform-independent: integers are
// little-endian fixed width, doubles are their IEEE-754 bit patterns
// (`std::bit_cast` through u64), so a state round-trip reproduces every
// value bit-identically — the property the kill-point recovery oracle
// (tests/test_recovery.cpp) is built on.
#ifndef SMERGE_UTIL_SNAPSHOT_H
#define SMERGE_UTIL_SNAPSHOT_H

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace smerge::util {

/// Structured (de)serialization failure: bad magic, schema mismatch,
/// truncation, checksum mismatch, or an out-of-bounds read. The message
/// names the failing field.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a 64-bit hash — the frame checksum. Not cryptographic; it
/// detects the corruption classes crash recovery cares about (torn
/// writes, flipped bytes, truncation).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept;

/// Typed little-endian appender. Accumulates a raw payload; `frame`
/// seals it into a self-validating snapshot.
class SnapshotWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// IEEE-754 bit pattern through u64 — bit-exact, including NaNs and
  /// infinities.
  void f64(double v);
  void boolean(bool v);
  /// u32 length + bytes.
  void str(std::string_view s);
  /// Raw bytes, no length prefix (caller frames them).
  void raw(std::span<const std::uint8_t> bytes);
  /// u64 length + bytes — a skippable sub-blob (policy state, driver
  /// extensions).
  void blob(std::span<const std::uint8_t> bytes);
  /// u64 count + elements.
  void f64_vec(std::span<const double> v);
  void i64_vec(std::span<const std::int64_t> v);

  /// Payload accumulated so far.
  [[nodiscard]] std::span<const std::uint8_t> payload() const noexcept {
    return {buffer_.data(), buffer_.size()};
  }
  /// Bytes appended so far.
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

  /// Seals the payload into a checksummed frame tagged with `schema`
  /// (non-empty, at most 64 bytes). The writer keeps its payload and
  /// can keep appending (frames are value snapshots).
  [[nodiscard]] std::vector<std::uint8_t> frame(std::string_view schema) const;

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked typed reader over a byte span. Construct directly for
/// raw payloads (WAL record bodies); use `open` for framed snapshots.
/// The reader never owns memory — the span must outlive it.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::uint8_t> payload) noexcept
      : data_(payload) {}

  /// Validates a frame end to end — magic, format version, schema
  /// (must equal `expected_schema`), payload length, checksum — and
  /// returns a reader positioned at the payload start. Throws
  /// SnapshotError naming the first violated property.
  [[nodiscard]] static SnapshotReader open(std::span<const std::uint8_t> frame,
                                           std::string_view expected_schema);

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::string str();
  /// Exactly `n` raw bytes.
  [[nodiscard]] std::span<const std::uint8_t> raw(std::size_t n);
  /// A u64-length-prefixed sub-blob (mirror of SnapshotWriter::blob).
  [[nodiscard]] std::span<const std::uint8_t> blob();
  [[nodiscard]] std::vector<double> f64_vec();
  [[nodiscard]] std::vector<std::int64_t> i64_vec();

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// Throws SnapshotError unless every byte was consumed — catches
  /// schema drift where a reader under-reads a record.
  void expect_end() const;

 private:
  [[nodiscard]] const std::uint8_t* take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Writes `bytes` to `path` atomically enough for checkpoints (write to
/// `path` directly, optionally fsync before close). Throws
/// std::runtime_error on I/O failure.
void write_bytes_file(const std::string& path, std::span<const std::uint8_t> bytes,
                      bool fsync);

/// Reads a whole file; throws std::runtime_error when it cannot be
/// opened or read.
[[nodiscard]] std::vector<std::uint8_t> read_bytes_file(const std::string& path);

}  // namespace smerge::util

#endif  // SMERGE_UTIL_SNAPSHOT_H
