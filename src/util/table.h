// Console table and CSV rendering used by examples and benchmark harnesses.
//
// The benches in this repository print the rows/series of every figure and
// table of the paper; TextTable keeps that output aligned for humans while
// `to_csv()` provides machine-readable output for replotting.
#ifndef SMERGE_UTIL_TABLE_H
#define SMERGE_UTIL_TABLE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace smerge::util {

/// Column alignment for console rendering.
enum class Align { kLeft, kRight };

/// A simple in-memory table: a header plus string rows.
///
/// Typical use:
///   TextTable t({"n", "M(n)"});
///   t.add_row(8, 21);
///   std::cout << t.to_string();
class TextTable {
 public:
  /// Creates a table with the given column headers. All columns default to
  /// right alignment (numeric output dominates in this project).
  explicit TextTable(std::vector<std::string> headers);

  /// Number of columns (fixed at construction).
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Sets the alignment of column `col` (0-based). Throws std::out_of_range.
  void set_align(std::size_t col, Align align);

  /// Adds a row of pre-rendered cells. Throws std::invalid_argument if the
  /// arity does not match the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience variadic overload rendering each argument with `cell()`.
  template <typename... Ts>
  void add_row(const Ts&... values) {
    add_row(std::vector<std::string>{cell(values)...});
  }

  /// Renders a value as a table cell. Doubles use fixed precision 4 unless
  /// they are integral; integers render exactly.
  [[nodiscard]] static std::string cell(const std::string& v) { return v; }
  [[nodiscard]] static std::string cell(const char* v) { return v; }
  [[nodiscard]] static std::string cell(double v);
  [[nodiscard]] static std::string cell(std::int64_t v);
  [[nodiscard]] static std::string cell(std::uint64_t v);
  [[nodiscard]] static std::string cell(int v) { return cell(static_cast<std::int64_t>(v)); }
  [[nodiscard]] static std::string cell(unsigned v) { return cell(static_cast<std::uint64_t>(v)); }

  /// Aligned, boxed console rendering (trailing newline included).
  [[nodiscard]] std::string to_string() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

  /// Streams `to_string()`.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
[[nodiscard]] std::string format_fixed(double value, int places);

}  // namespace smerge::util

#endif  // SMERGE_UTIL_TABLE_H
