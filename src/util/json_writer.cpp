#include "util/json_writer.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace smerge::util {

namespace {

/// Shortest round-trip decimal rendering of a finite double.
std::string render_double(double number) {
  char buf[64];
  // 17 significant digits round-trip any IEEE double; trim the common
  // integral case so series of small integers stay readable.
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  std::string text(buf);
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  return text;
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out_;
  out_.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\b': out_ += "\\b"; break;
      case '\f': out_ += "\\f"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  return out_;
}

void JsonWriter::begin_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (!scopes_.empty() && scopes_.back() == Scope::kObject && !key_pending_) {
    throw std::logic_error("JsonWriter: value inside an object requires a key");
  }
  if (key_pending_) {
    key_pending_ = false;  // the comma/indent was emitted with the key
    return;
  }
  if (!scopes_.empty()) {
    if (had_items_.back()) out_ += ',';
    out_ += '\n';
    out_.append(2 * scopes_.size(), ' ');
    had_items_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  had_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (scopes_.empty() || scopes_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: end_object without matching object");
  }
  const bool had = had_items_.back();
  scopes_.pop_back();
  had_items_.pop_back();
  if (had) {
    out_ += '\n';
    out_.append(2 * scopes_.size(), ' ');
  }
  out_ += '}';
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  had_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (scopes_.empty() || scopes_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: end_array without matching array");
  }
  const bool had = had_items_.back();
  scopes_.pop_back();
  had_items_.pop_back();
  if (had) {
    out_ += '\n';
    out_.append(2 * scopes_.size(), ' ');
  }
  out_ += ']';
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (scopes_.empty() || scopes_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: key outside of an object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: two keys in a row");
  if (had_items_.back()) out_ += ',';
  out_ += '\n';
  out_.append(2 * scopes_.size(), ' ');
  had_items_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  begin_value();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  begin_value();
  out_ += render_double(number);
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  begin_value();
  out_ += std::to_string(number);
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  begin_value();
  out_ += std::to_string(number);
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  begin_value();
  out_ += flag ? "true" : "false";
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  begin_value();
  out_ += "null";
  if (scopes_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!scopes_.empty()) {
    throw std::logic_error("JsonWriter: unbalanced scopes at str()");
  }
  if (!done_) throw std::logic_error("JsonWriter: empty document");
  std::string doc = out_;
  doc += '\n';
  return doc;
}

namespace {

/// Recursive-descent validator over the emitted subset of RFC 8259.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  std::optional<std::string> run() {
    skip_ws();
    if (auto err = parse_value()) return err;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content");
    return std::nullopt;
  }

 private:
  std::optional<std::string> fail(const std::string& what) const {
    return what + " at byte " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at(char c) const {
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<std::string> parse_value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return consume("true") ? std::nullopt : fail("bad literal");
      case 'f': return consume("false") ? std::nullopt : fail("bad literal");
      case 'n': return consume("null") ? std::nullopt : fail("bad literal");
      default: return parse_number();
    }
  }

  std::optional<std::string> parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (at('}')) { ++pos_; return std::nullopt; }
    while (true) {
      skip_ws();
      if (!at('"')) return fail("expected object key");
      if (auto err = parse_string()) return err;
      skip_ws();
      if (!at(':')) return fail("expected ':'");
      ++pos_;
      skip_ws();
      if (auto err = parse_value()) return err;
      skip_ws();
      if (at(',')) { ++pos_; continue; }
      if (at('}')) { ++pos_; return std::nullopt; }
      return fail("expected ',' or '}'");
    }
  }

  std::optional<std::string> parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (at(']')) { ++pos_; return std::nullopt; }
    while (true) {
      skip_ws();
      if (auto err = parse_value()) return err;
      skip_ws();
      if (at(',')) { ++pos_; continue; }
      if (at(']')) { ++pos_; return std::nullopt; }
      return fail("expected ',' or ']'");
    }
  }

  std::optional<std::string> parse_string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return std::nullopt; }
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("truncated escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  std::size_t eat_digits() {
    std::size_t count = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++count;
    }
    return count;
  }

  std::optional<std::string> parse_number() {
    if (at('-')) ++pos_;
    if (eat_digits() == 0) return fail("malformed number");
    if (at('.')) {
      ++pos_;
      if (eat_digits() == 0) return fail("malformed fraction");
    }
    if (at('e') || at('E')) {
      ++pos_;
      if (at('+') || at('-')) ++pos_;
      if (eat_digits() == 0) return fail("malformed exponent");
    }
    return std::nullopt;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<std::string> json_error(std::string_view text) {
  return Validator(text).run();
}

}  // namespace smerge::util
