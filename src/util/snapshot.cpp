#include "util/snapshot.h"

#include <bit>
#include <cstdio>
#include <limits>

#ifdef __unix__
#include <unistd.h>
#endif

namespace smerge::util {

namespace {

// "SMSN" little-endian — snapshot frame magic.
constexpr std::uint32_t kMagic = 0x4e534d53u;
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kMaxSchemaLength = 64;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

[[nodiscard]] std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void SnapshotWriter::u8(std::uint8_t v) { buffer_.push_back(v); }

void SnapshotWriter::u32(std::uint32_t v) { append_u32(buffer_, v); }

void SnapshotWriter::u64(std::uint64_t v) { append_u64(buffer_, v); }

void SnapshotWriter::i64(std::int64_t v) {
  append_u64(buffer_, static_cast<std::uint64_t>(v));
}

void SnapshotWriter::f64(double v) {
  append_u64(buffer_, std::bit_cast<std::uint64_t>(v));
}

void SnapshotWriter::boolean(bool v) { buffer_.push_back(v ? 1 : 0); }

void SnapshotWriter::str(std::string_view s) {
  if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw SnapshotError("snapshot: string too long");
  }
  append_u32(buffer_, static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void SnapshotWriter::raw(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void SnapshotWriter::blob(std::span<const std::uint8_t> bytes) {
  append_u64(buffer_, bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void SnapshotWriter::f64_vec(std::span<const double> v) {
  append_u64(buffer_, v.size());
  for (const double x : v) f64(x);
}

void SnapshotWriter::i64_vec(std::span<const std::int64_t> v) {
  append_u64(buffer_, v.size());
  for (const std::int64_t x : v) i64(x);
}

std::vector<std::uint8_t> SnapshotWriter::frame(std::string_view schema) const {
  if (schema.empty() || schema.size() > kMaxSchemaLength) {
    throw SnapshotError("snapshot: schema must be 1..64 bytes");
  }
  std::vector<std::uint8_t> out;
  out.reserve(buffer_.size() + schema.size() + 32);
  append_u32(out, kMagic);
  append_u32(out, kFormatVersion);
  append_u32(out, static_cast<std::uint32_t>(schema.size()));
  out.insert(out.end(), schema.begin(), schema.end());
  append_u64(out, buffer_.size());
  out.insert(out.end(), buffer_.begin(), buffer_.end());
  append_u64(out, fnv1a64({out.data(), out.size()}));
  return out;
}

SnapshotReader SnapshotReader::open(std::span<const std::uint8_t> frame,
                                    std::string_view expected_schema) {
  SnapshotReader header(frame);
  if (header.remaining() < 12) {
    throw SnapshotError("snapshot: frame truncated before header");
  }
  if (header.u32() != kMagic) {
    throw SnapshotError("snapshot: bad magic");
  }
  if (const std::uint32_t version = header.u32(); version != kFormatVersion) {
    throw SnapshotError("snapshot: unsupported format version " +
                        std::to_string(version));
  }
  const std::uint32_t schema_len = header.u32();
  if (schema_len > kMaxSchemaLength || schema_len > header.remaining()) {
    throw SnapshotError("snapshot: bad schema length");
  }
  const std::span<const std::uint8_t> schema_bytes = header.raw(schema_len);
  const std::string_view schema(
      reinterpret_cast<const char*>(schema_bytes.data()), schema_bytes.size());
  if (schema != expected_schema) {
    throw SnapshotError("snapshot: schema mismatch: expected '" +
                        std::string(expected_schema) + "', found '" +
                        std::string(schema) + "'");
  }
  if (header.remaining() < 8) {
    throw SnapshotError("snapshot: frame truncated before payload length");
  }
  const std::uint64_t payload_len = header.u64();
  if (payload_len + 8 != header.remaining()) {
    throw SnapshotError("snapshot: payload length disagrees with frame size");
  }
  const std::size_t checksummed = frame.size() - 8;
  const std::uint64_t stored = load_u64(frame.data() + checksummed);
  const std::uint64_t computed = fnv1a64(frame.first(checksummed));
  if (stored != computed) {
    throw SnapshotError("snapshot: checksum mismatch (corrupted frame)");
  }
  return SnapshotReader(
      frame.subspan(checksummed - static_cast<std::size_t>(payload_len),
                    static_cast<std::size_t>(payload_len)));
}

const std::uint8_t* SnapshotReader::take(std::size_t n) {
  if (n > remaining()) {
    throw SnapshotError("snapshot: read past end (" + std::to_string(n) +
                        " bytes wanted, " + std::to_string(remaining()) +
                        " remain)");
  }
  const std::uint8_t* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t SnapshotReader::u8() { return *take(1); }

std::uint32_t SnapshotReader::u32() { return load_u32(take(4)); }

std::uint64_t SnapshotReader::u64() { return load_u64(take(8)); }

std::int64_t SnapshotReader::i64() { return static_cast<std::int64_t>(u64()); }

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

bool SnapshotReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw SnapshotError("snapshot: bad boolean");
  return v != 0;
}

std::string SnapshotReader::str() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = take(n);
  return {reinterpret_cast<const char*>(p), n};
}

std::span<const std::uint8_t> SnapshotReader::raw(std::size_t n) {
  return {take(n), n};
}

std::span<const std::uint8_t> SnapshotReader::blob() {
  const std::uint64_t n = u64();
  if (n > remaining()) {
    throw SnapshotError("snapshot: blob length exceeds remaining bytes");
  }
  return raw(static_cast<std::size_t>(n));
}

std::vector<double> SnapshotReader::f64_vec() {
  const std::uint64_t n = u64();
  if (n > remaining() / 8) {
    throw SnapshotError("snapshot: vector count exceeds remaining bytes");
  }
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = f64();
  return v;
}

std::vector<std::int64_t> SnapshotReader::i64_vec() {
  const std::uint64_t n = u64();
  if (n > remaining() / 8) {
    throw SnapshotError("snapshot: vector count exceeds remaining bytes");
  }
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (std::int64_t& x : v) x = i64();
  return v;
}

void SnapshotReader::expect_end() const {
  if (remaining() != 0) {
    throw SnapshotError("snapshot: " + std::to_string(remaining()) +
                        " unread trailing bytes");
  }
}

void write_bytes_file(const std::string& path,
                      std::span<const std::uint8_t> bytes, bool fsync) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("snapshot: cannot open '" + path + "' for writing");
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fflush(f) == 0 && ok;
#ifdef __unix__
  if (ok && fsync) ok = ::fsync(fileno(f)) == 0;
#else
  (void)fsync;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    throw std::runtime_error("snapshot: write to '" + path + "' failed");
  }
}

std::vector<std::uint8_t> read_bytes_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("snapshot: cannot open '" + path + "'");
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[65536];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    throw std::runtime_error("snapshot: read from '" + path + "' failed");
  }
  return bytes;
}

}  // namespace smerge::util
