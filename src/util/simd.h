// Portable SIMD kernels for the ledger's integer scan loops.
//
// The ChannelLedger spends its query time in three loops over a
// bucket's ±1 delta stream: the summary recompute after a sort
// (running prefix sum + running max), the windowed-max scans of
// `max_over`, and the occupancy prefix sum. All three are integer
// arithmetic over a contiguous `int32_t` delta array, so a vector
// kernel is *bit-identical* to the scalar loop — there is no
// floating-point reassociation to worry about, only exact max() and
// exact sums. The drain path adds a fourth consumer: the posted-batch
// re-sort check reduces to "are these times strictly increasing",
// a lane-parallel compare.
//
// Kernels come in three flavours, dispatched once at load time:
//  * "avx2"   — x86-64 with AVX2 at runtime (function multi-versioned
//               via `__attribute__((target))`, 4×int64 lanes);
//  * "v128"   — the same source compiled at the build baseline through
//               GCC/Clang generic vector extensions (SSE2 on x86-64,
//               NEON on AArch64; the compiler splits the 256-bit
//               vectors into 128-bit halves);
//  * "scalar" — the original `bmax` loop, always compiled, used as the
//               test oracle and selected by `force_scalar(true)`
//               (the `--no-simd` escape hatch).
//
// Bit-identity between flavours is enforced by tests (fuzz vs the
// scalar oracle) and by the checkpoint byte-identity suite — required,
// not assumed.
#ifndef SMERGE_UTIL_SIMD_H
#define SMERGE_UTIL_SIMD_H

#include <cstddef>
#include <cstdint>

namespace smerge::util::simd {

/// Branch-free max for the scan loops: with d = a - b, `d & ~(d >> 63)`
/// is d when d >= 0 and 0 otherwise. Exact for |a - b| < 2^63 (always
/// true for the ledger's bounded ±1 prefix sums). This is the scalar
/// oracle every vector kernel must match bit for bit.
[[nodiscard]] constexpr std::int64_t bmax(std::int64_t a,
                                          std::int64_t b) noexcept {
  const std::int64_t d = a - b;
  return b + (d & ~(d >> 63));
}

/// Result of a prefix scan continued from (running, best).
struct ScanResult {
  std::int64_t running = 0;  ///< running + sum(deltas[0..n))
  std::int64_t best = 0;     ///< max(best, max over inclusive prefixes)
};

/// Scalar oracle: for each delta, running += delta; best = bmax(best,
/// running). Exactly the ledger's historical summary loop.
[[nodiscard]] ScanResult prefix_scan_scalar(const std::int32_t* deltas,
                                            std::size_t n,
                                            std::int64_t running,
                                            std::int64_t best) noexcept;

/// Vector-dispatched prefix scan; bit-identical to the scalar oracle.
[[nodiscard]] ScanResult prefix_scan(const std::int32_t* deltas,
                                     std::size_t n, std::int64_t running,
                                     std::int64_t best) noexcept;

/// Scalar oracle for the plain delta sum (occupancy prefix).
[[nodiscard]] std::int64_t sum_scalar(const std::int32_t* deltas,
                                      std::size_t n) noexcept;

/// Vector-dispatched delta sum; bit-identical to the scalar oracle.
[[nodiscard]] std::int64_t sum(const std::int32_t* deltas,
                               std::size_t n) noexcept;

/// Scalar oracle: x[i] < x[i+1] for all i (vacuously true for n < 2).
[[nodiscard]] bool strictly_increasing_scalar(const double* x,
                                              std::size_t n) noexcept;

/// Vector-dispatched strict-increase check over the posted-batch time
/// keys: strictly increasing times mean the batch is already sorted by
/// (time, ticket) and no tie needs the ticket at all.
[[nodiscard]] bool strictly_increasing(const double* x,
                                       std::size_t n) noexcept;

/// Name of the kernel the dispatcher picked: "avx2", "v128" or
/// "scalar" (the latter also when `force_scalar(true)` is in effect).
[[nodiscard]] const char* active_kernel() noexcept;

/// int64 lanes per vector step of the active kernel (4, 2, or 1).
[[nodiscard]] unsigned lanes() noexcept;

/// Route every dispatched kernel to the scalar oracle (the
/// `--no-simd` flag and the equivalence tests). Thread-safe toggle.
void force_scalar(bool on) noexcept;

/// Whether `force_scalar(true)` is currently in effect.
[[nodiscard]] bool scalar_forced() noexcept;

}  // namespace smerge::util::simd

#endif  // SMERGE_UTIL_SIMD_H
