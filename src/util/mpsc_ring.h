// Bounded lock-free MPSC ring buffer + never-drop mailbox wrapper — the
// hot ingest path of the serving runtime (src/server/server_core.h).
//
// `MpscRing<T>` is a bounded multi-producer/single-consumer queue in the
// style of Vyukov's bounded MPMC ring, specialized to one consumer:
// each slot carries a sequence number; a producer claims a slot with one
// `fetch_add`-free CAS on the head cursor and *publishes* it by storing
// `pos + 1` into the slot's sequence with release ordering; the consumer
// observes publication with an acquire load and recycles the slot by
// storing `pos + capacity`. Capacity is a power of two so slot lookup is
// one mask. A full ring never blocks and never drops: `try_push` simply
// returns false and the caller takes a fallback path.
//
// `MpscMailbox<T>` is that fallback packaged with the ring: pushes that
// find the ring full spill into a mutex-guarded vector (the slow path —
// by construction it is only taken when producers outrun the consumer by
// a whole ring), so no element is ever lost. The consumer's
// `drain` claims the ring's published range and the spill in one call.
// Cross-path ordering is the caller's affair: a drain returns ring
// elements first, then spilled elements, so callers that need a total
// order carry a ticket in T and re-sort (what the serving core does with
// its per-shard post sequence). Note that order must be restored ACROSS
// drains, not just within one: the ring sweep stops at the first
// claimed-but-unpublished slot, and a producer may publish that slot
// and then spill newer elements before the same drain's spill claim —
// so one drain can return an element while an earlier one (by ticket)
// is still in the ring for the next drain. Callers fold a drain's
// elements in ticket order and hold back anything past a ticket gap
// (what ServerCore::collect_posted does).
//
// Concurrency contract:
//  * any number of producers may call `push`/`try_push` concurrently,
//    concurrently with one consumer in `drain`/`has_items`;
//  * `drain`, `has_items` and `spilled` are single-consumer: at most one
//    thread calls them at a time;
//  * elements pushed by one producer are drained in that producer's
//    push order within each path (ring or spill) — the FIFO-per-producer
//    guarantee downstream determinism arguments build on.
#ifndef SMERGE_UTIL_MPSC_RING_H
#define SMERGE_UTIL_MPSC_RING_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace smerge::util {

/// Bounded lock-free multi-producer/single-consumer ring. T must be
/// trivially copyable (slots are raw storage republished across
/// threads).
template <typename T>
class MpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "MpscRing payloads are copied across threads raw");

 public:
  /// Capacity is rounded up to a power of two (minimum 2). Throws
  /// std::invalid_argument on zero or on a capacity that would not fit
  /// the sequence arithmetic.
  explicit MpscRing(std::size_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("MpscRing: capacity must be positive");
    }
    std::size_t rounded = 2;
    while (rounded < capacity) {
      if (rounded > (std::size_t{1} << 62)) {
        throw std::invalid_argument("MpscRing: capacity too large");
      }
      rounded *= 2;
    }
    slots_ = std::vector<Slot>(rounded);
    mask_ = rounded - 1;
    for (std::size_t i = 0; i < rounded; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full (the element is
  /// NOT enqueued); lock-free, never blocks.
  bool try_push(const T& item) noexcept {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        // The slot is free at this position: claim it by advancing the
        // head, then publish.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = item;
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        // The consumer has not recycled this slot yet: a full ring.
        return false;
      } else {
        // Another producer claimed this position; reload and retry.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side: appends every published element to `out` in
  /// publication-slot order and recycles the slots. Stops at the first
  /// claimed-but-unpublished slot. Returns the number drained.
  std::size_t drain(std::vector<T>& out) {
    std::size_t drained = 0;
    for (;;) {
      Slot& slot = slots_[static_cast<std::size_t>(tail_) & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (static_cast<std::int64_t>(seq) -
              static_cast<std::int64_t>(tail_ + 1) <
          0) {
        break;  // not yet published
      }
      out.push_back(slot.value);
      slot.seq.store(tail_ + capacity(), std::memory_order_release);
      ++tail_;
      ++drained;
    }
    return drained;
  }

  /// Consumer side: true when at least one published element awaits.
  [[nodiscard]] bool has_published() const noexcept {
    const Slot& slot = slots_[static_cast<std::size_t>(tail_) & mask_];
    return slot.seq.load(std::memory_order_acquire) == tail_ + 1;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  /// Next position a producer claims. Padded away from the consumer
  /// cursor so producers and the consumer do not false-share.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  /// Next position the consumer reads; consumer-owned, unsynchronized.
  alignas(64) std::uint64_t tail_ = 0;
};

/// A ring plus a mutex-guarded overflow vector: `push` never fails and
/// never drops. The fast path is the lock-free ring; the spill path is
/// taken only while producers are a full ring ahead of the consumer.
template <typename T>
class MpscMailbox {
 public:
  explicit MpscMailbox(std::size_t ring_capacity) : ring_(ring_capacity) {}

  [[nodiscard]] std::size_t ring_capacity() const noexcept {
    return ring_.capacity();
  }

  /// Producer side; wait-free unless the ring is full (then one mutex).
  void push(const T& item) {
    if (ring_.try_push(item)) return;
    const std::scoped_lock lock(spill_mutex_);
    spill_.push_back(item);
    spilled_.fetch_add(1, std::memory_order_relaxed);
    spill_count_.store(spill_.size(), std::memory_order_release);
  }

  /// Consumer side: drains the ring's published range, then the spill.
  /// Returns the number of elements appended to `out`.
  std::size_t drain(std::vector<T>& out) {
    std::size_t drained = ring_.drain(out);
    if (spill_count_.load(std::memory_order_acquire) > 0) {
      const std::scoped_lock lock(spill_mutex_);
      drained += spill_.size();
      out.insert(out.end(), spill_.begin(), spill_.end());
      spill_.clear();
      spill_count_.store(0, std::memory_order_release);
    }
    return drained;
  }

  /// Consumer side: true when a drain would return at least one element.
  [[nodiscard]] bool has_items() const noexcept {
    return ring_.has_published() ||
           spill_count_.load(std::memory_order_acquire) > 0;
  }

  /// Total elements that ever took the spill path (monotone; an
  /// overflow-pressure signal, not a loss count — spilled elements are
  /// still delivered).
  [[nodiscard]] std::uint64_t spilled() const noexcept {
    return spilled_.load(std::memory_order_relaxed);
  }

 private:
  MpscRing<T> ring_;
  std::mutex spill_mutex_;
  std::vector<T> spill_;                       ///< guarded by spill_mutex_
  std::atomic<std::size_t> spill_count_{0};    ///< lock-free emptiness probe
  std::atomic<std::uint64_t> spilled_{0};
};

}  // namespace smerge::util

#endif  // SMERGE_UTIL_MPSC_RING_H
