// Streaming summary statistics (Welford) used by the simulation experiments
// to aggregate bandwidth measurements over repeated seeded runs.
#ifndef SMERGE_UTIL_STATS_H
#define SMERGE_UTIL_STATS_H

#include <cstdint>
#include <limits>
#include <vector>

namespace smerge::util {

/// Accumulates min/max/mean/variance in a single pass (Welford's method),
/// numerically stable for long simulation runs.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations so far.
  [[nodiscard]] std::int64_t count() const noexcept { return n_; }
  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  /// Square root of `variance()`.
  [[nodiscard]] double stddev() const noexcept;
  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact nearest-rank q-quantile of `sorted` (ascending): the value at
/// rank ceil(q * n). `sorted` MUST already be ascending (callers sort
/// once and query several quantiles). Returns 0 for an empty vector;
/// requires q in [0, 1].
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q);

/// The complete state of a `P2Quantile` estimator — every marker, so a
/// restored estimator continues bit-identically from where the saved
/// one stopped. Two states compare equal iff every field (including
/// each marker array element) is bitwise-equal, which is exactly the
/// oracle the checkpoint round-trip tests assert.
struct P2State {
  double q = 0.0;
  std::int64_t n = 0;
  double heights[5] = {};
  double positions[5] = {};
  double desired[5] = {};
  double increments[5] = {};

  friend bool operator==(const P2State&, const P2State&) = default;
};

/// Running quantile estimator (the P-squared algorithm of Jain &
/// Chlamtac, 1985): five markers track the q-quantile of a stream in
/// O(1) memory and O(1) per observation, without retaining samples.
/// The estimate converges to the true quantile for stationary streams;
/// exact answers stay available from `quantile_sorted` when the caller
/// retains the samples — the hybrid the serving runtime uses for live
/// (P²) vs end-of-run (exact) delay percentiles.
class P2Quantile {
 public:
  /// Tracks the q-quantile; requires q in (0, 1).
  explicit P2Quantile(double q);

  /// Resumes from a previously captured state; requires state.q in
  /// (0, 1). A resumed estimator produces the same estimates as the
  /// original would for any continuation of the stream.
  explicit P2Quantile(const P2State& state);

  /// Adds one observation.
  void add(double x) noexcept;

  /// Current estimate: exact (nearest-rank) while fewer than five
  /// observations have arrived, the P² marker value afterwards.
  /// 0 when empty.
  [[nodiscard]] double estimate() const noexcept;

  /// Number of observations so far.
  [[nodiscard]] std::int64_t count() const noexcept { return n_; }

  /// The full marker state, suitable for checkpointing.
  [[nodiscard]] P2State state() const noexcept;

 private:
  double q_;
  std::int64_t n_ = 0;
  double heights_[5] = {};    ///< marker heights (ascending)
  double positions_[5] = {};  ///< actual marker positions (1-based)
  double desired_[5] = {};    ///< desired marker positions
  double increments_[5] = {}; ///< desired-position increments per add
};

/// Start-up delay distribution summary: exact mean/max plus p50/p95/p99
/// percentiles (nearest-rank when computed exactly, P² estimates when
/// queried live mid-run). The unit is the producer's own (the engine
/// and the serving core use media lengths).
struct DelayProfile {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

}  // namespace smerge::util

#endif  // SMERGE_UTIL_STATS_H
