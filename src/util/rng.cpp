#include "util/rng.h"

#include <cmath>

namespace smerge::util {

namespace {

// Finalizing mix (Stafford variant 13): decorrelates seed/key pairs so
// substreams of adjacent keys share no low-bit structure.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

double SplitMix64::next_exponential(double mean) noexcept {
  return -mean * std::log(1.0 - next_double());
}

SplitMix64 SplitMix64::split(std::uint64_t key) const noexcept {
  // Two rounds of mixing over (seed, key); a single round leaves seed 0
  // with visibly correlated small-key substreams.
  const std::uint64_t derived =
      mix64(mix64(seed_ + 0x9e3779b97f4a7c15ULL) ^
            mix64(key + 0xd1342543de82ef95ULL));
  return SplitMix64(derived);
}

}  // namespace smerge::util
