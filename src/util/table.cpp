#include "util/table.h"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace smerge::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: at least one column required");
  }
}

void TextTable::set_align(std::size_t col, Align align) {
  aligns_.at(col) = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::cell(double v) {
  return format_fixed(v, 4);
}

std::string TextTable::cell(std::int64_t v) {
  return std::to_string(v);
}

std::string TextTable::cell(std::uint64_t v) {
  return std::to_string(v);
}

namespace {

std::string pad(const std::string& s, std::size_t width, Align align) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return align == Align::kRight ? fill + s : s + fill;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << pad(row[c], widths[c], aligns_[c]) << " |";
    }
    os << '\n';
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

std::string format_fixed(double value, int places) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(places);
  os << value;
  return os.str();
}

}  // namespace smerge::util
