#include "util/parallel.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace smerge::util {

unsigned default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw == 0 ? 1u : hw, 1u, 64u);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  unsigned threads) {
  if (begin >= end) return;
  const std::int64_t count = end - begin;
  const auto workers = static_cast<std::int64_t>(std::max(1u, threads));
  if (workers == 1 || count < 2) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  const std::int64_t used = std::min<std::int64_t>(workers, count);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(used));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (std::int64_t w = 0; w < used; ++w) {
    // Contiguous block partitioning: worker w handles [lo, hi).
    const std::int64_t lo = begin + count * w / used;
    const std::int64_t hi = begin + count * (w + 1) / used;
    pool.emplace_back([&, lo, hi] {
      try {
        for (std::int64_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace smerge::util
