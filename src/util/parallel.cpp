#include "util/parallel.h"

#include <algorithm>
#include <thread>

#include "util/thread_pool.h"

namespace smerge::util {

unsigned default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw == 0 ? 1u : hw, 1u, 64u);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  unsigned threads) {
  parallel_for_on(ThreadPool::shared(), begin, end, body, threads);
}

void parallel_for_on(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                     const std::function<void(std::int64_t)>& body,
                     unsigned threads) {
  if (begin >= end) return;
  const std::int64_t count = end - begin;
  if (threads <= 1 || count < 2) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Chunks a few times smaller than an even split keep stragglers busy
  // when per-index work is uneven (typical for size-ladder sweeps).
  const auto participants =
      static_cast<std::int64_t>(std::max(1u, std::min(threads, 64u)));
  const std::int64_t grain = std::max<std::int64_t>(1, count / (participants * 4));
  pool.run(begin, end, grain, threads, body);
}

}  // namespace smerge::util
