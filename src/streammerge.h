// Umbrella header: the complete public API of the streammerge library.
//
// Include this to get every subsystem; fine-grained headers remain
// available for faster builds. See README.md for an overview and
// DESIGN.md for the mapping from modules to the paper's results.
#ifndef SMERGE_STREAMMERGE_H
#define SMERGE_STREAMMERGE_H

// Fibonacci substrate.
#include "fib/fibonacci.h"

// Core: merge trees/forests, optimal costs and constructions.
#include "core/buffer.h"
#include "core/full_cost.h"
#include "core/merge_cost.h"
#include "core/merge_forest.h"
#include "core/merge_tree.h"
#include "core/model.h"
#include "core/tree_builder.h"

// Slot-accurate schedules, receiving programs, playback verification.
#include "schedule/channels.h"
#include "schedule/diagram.h"
#include "schedule/playback.h"
#include "schedule/receiving_program.h"
#include "schedule/stream_schedule.h"

// On-line Delay Guaranteed policy, program table, server.
#include "online/delay_guaranteed.h"
#include "online/program_table.h"
#include "online/server.h"

// General-arrivals merging: dyadic, batching, off-line optimum.
#include "merging/batching.h"
#include "merging/continuous_playback.h"
#include "merging/dyadic.h"
#include "merging/general_forest.h"
#include "merging/optimal_general.h"

// The live serving runtime: sharded ServerCore, incremental channel
// ledger, capacity-aware admission.
#include "server/channel_ledger.h"
#include "server/server_core.h"

// Simulation: arrivals, experiment runners, Section-5 extensions.
#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "sim/hybrid.h"
#include "sim/multi_object.h"

// Utilities.
#include "util/cli.h"
#include "util/json_writer.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/table.h"

#endif  // SMERGE_STREAMMERGE_H
