// Optimal full cost and optimal merge forests (Sections 3.2-3.4).
//
// F(L,n,s) is the minimum full cost over forests with exactly s full
// streams. Lemma 9 shows the best such forest splits the arrivals as
// evenly as possible: with n = p s + r (0 <= r < s),
//   F(L,n,s) = s L + r M(p+1) + (s-r) M(p).
// Theorem 12 locates the optimal s without scanning: with h such that
// F_{h+1} < L+2 <= F_{h+2} and s1 = floor(n / F_h), either s1 or s1+1
// minimizes F(L,n,s) (clamped to the feasible range [ceil(n/L), n]).
// Theorem 10 then builds an optimal forest in O(L + n).
//
// Section 3.3 (Theorem 16) adapts the result to clients with buffer size
// B <= L/2: a new full stream must start at least every B slots, i.e.
// trees hold at most B arrivals, so s >= ceil(n/B).
//
// Section 3.4 repeats the program for the receive-all model (Eq. 22).
#ifndef SMERGE_CORE_FULL_COST_H
#define SMERGE_CORE_FULL_COST_H

#include "core/merge_cost.h"
#include "core/merge_forest.h"

namespace smerge {

/// Smallest feasible number of full streams: s0 = ceil(n/L) (at most L-1
/// streams can merge into one stream of length L; Section 3.2).
[[nodiscard]] Index min_streams(Index media_length, Index n);

/// F(L,n,s) via Lemma 9 (receive-two) / Eq. 22 (receive-all). Requires
/// 1 <= n, 1 <= L and min_streams(L,n) <= s <= n.
[[nodiscard]] Cost full_cost_given_streams(Index media_length, Index n, Index s,
                                           Model model = Model::kReceiveTwo);

/// The index h of Theorem 12: F_{h+1} < L+2 <= F_{h+2}. Requires L >= 1.
[[nodiscard]] int theorem12_index(Index media_length);

/// Result of the optimal stream-count computation.
struct StreamPlan {
  Index streams;  ///< optimal s
  Cost cost;      ///< F(L,n,s)
  Index trees_of_size_p1;  ///< r  (trees holding p+1 arrivals)
  Index trees_of_size_p;   ///< s-r (trees holding p arrivals)
  Index p;        ///< floor(n/s)
};

/// Optimal s for the receive-two model by Theorem 12 (O(log) candidates,
/// each evaluated in O(log n)). Ties prefer the smaller s.
[[nodiscard]] StreamPlan optimal_stream_count(Index media_length, Index n);

/// Optimal s for the receive-all model (linear scan over the feasible s
/// range; the paper gives no Theorem-12 analogue). O(n).
[[nodiscard]] StreamPlan optimal_stream_count_receive_all(Index media_length, Index n);

/// Optimal full cost F(L,n) / Fw(L,n).
[[nodiscard]] Cost full_cost(Index media_length, Index n, Model model = Model::kReceiveTwo);

/// Builds an optimal merge forest (Theorem 10 / Section 3.4): r trees of
/// p+1 arrivals followed by s-r trees of p arrivals, each an optimal merge
/// tree. O(L + n).
[[nodiscard]] MergeForest optimal_merge_forest(Index media_length, Index n,
                                               Model model = Model::kReceiveTwo);

/// --- Section 3.3: bounded client buffers -------------------------------

/// Optimal stream plan when clients can buffer at most B slots
/// (1 <= B <= L/2 per the paper; we accept B up to L). Trees are limited
/// to B arrivals, so s >= ceil(n/B) (Theorem 16).
[[nodiscard]] StreamPlan optimal_stream_count_bounded(Index media_length, Index n,
                                                      Index buffer_slots);

/// Optimal full cost with a B-slot client buffer.
[[nodiscard]] Cost full_cost_bounded(Index media_length, Index n, Index buffer_slots);

/// Optimal merge forest with a B-slot client buffer (Theorem 16),
/// O(B + n).
[[nodiscard]] MergeForest optimal_merge_forest_bounded(Index media_length, Index n,
                                                       Index buffer_slots);

/// --- Reference implementations (tests & benches only) ------------------

/// min over the feasible s range of full_cost_given_streams. O(n).
[[nodiscard]] Cost full_cost_scan(Index media_length, Index n,
                                  Model model = Model::kReceiveTwo);

/// O(n * min(n,L)) partition DP that does not assume Lemma 9's even-split
/// structure: G(i) = min_{1<=t<=min(L,i)} G(i-t) + L + M(t). Ground truth
/// for the optimal full cost.
[[nodiscard]] Cost full_cost_partition_dp(Index media_length, Index n,
                                          Model model = Model::kReceiveTwo);

}  // namespace smerge

#endif  // SMERGE_CORE_FULL_COST_H
