// The canonical stream-plan IR ("MergePlan") and its universal verifier.
//
// Every subsystem of this repository ultimately describes the same
// artifact — a forest of (possibly truncated) streams in which later
// streams merge into earlier ones under the continuous-playback
// constraint. Historically each layer encoded it its own way: the
// slotted `core/merge_forest` trees, the continuous
// `merging/general_forest`, and the `schedule/*` slot structures, each
// with private cost / peak-bandwidth / traversal code. `MergePlan` is
// the one flat format they all now emit and consume:
//
//  * SoA layout — parallel arrays `{start, delay, parent, merge_time,
//    length}` indexed by stream id (ids are nondecreasing in start
//    time), children stored as CSR-style ranges. The whole plan lives
//    in two arena blocks (one per element type), no per-node
//    allocation, so the hot cost/peak passes are straight-line scans
//    over contiguous memory.
//  * One verifier — `plan::verify` checks, for any producer, the
//    paper's full invariant set in a single walk: continuous playback
//    (the pieces of every client's receiving program partition
//    (0, L]), the Section-3.3 buffer bound b(x) = min(d, L - d),
//    receive-two vs receive-all legality, merge completion in time,
//    and the exact total cost / peak bandwidth. It subsumes the
//    continuous-forest checks of `merging/continuous_playback` and
//    the per-forest `total_cost` / `peak_concurrency` walks.
//
// Units are whatever the producer used: slots for the delay-guaranteed
// substrate (media length L, integer starts), normalized media lengths
// for the simulation engine (media length 1.0). All formulas depend
// only on differences, so the verifier never needs to know.
#ifndef SMERGE_CORE_PLAN_H
#define SMERGE_CORE_PLAN_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/model.h"
#include "fib/fibonacci.h"

namespace smerge::plan {

class PlanBuilder;

/// Progressive segment-timeline (chunk) description for a plan's media.
/// Chunks are consecutive media intervals: the first is `base` long and
/// each successive chunk grows by `growth` until it reaches the steady
/// `cap` (SNIPPETS 1-2: small fast-start chunks, larger steady chunks).
/// Playback begins only once the first `min_start_chunks` chunks are
/// fully buffered — the minimum-2-chunk start rule. That buffer is also
/// what makes the steady state safe: a steady chunk no larger than the
/// start buffer always completes before its playback deadline whenever
/// reception keeps up at unit rate, so the default `cap` (0) derives
/// exactly that bound. A larger explicit cap is accepted but the
/// verifier will flag the resulting deadline misses.
struct ChunkingConfig {
  double base = 0.0;           ///< first-chunk duration; 0 disables chunking
  double growth = 2.0;         ///< successive-chunk ratio until the cap
  double cap = 0.0;            ///< steady-state duration; 0 = start-buffer size
  Index min_start_chunks = 2;  ///< chunks buffered before playback starts

  [[nodiscard]] bool enabled() const noexcept { return base > 0.0; }
};

/// Validates a chunking config against a media length; throws
/// std::invalid_argument with the offending field on failure.
void validate(const ChunkingConfig& config, double media_length);

/// The effective steady-state chunk duration (resolves the 0 = derived
/// default). Requires a validated config.
[[nodiscard]] double steady_chunk(const ChunkingConfig& config);

/// Cumulative chunk end positions over (0, media_length]: chunk k
/// covers (ends[k-1], ends[k]] (with ends[-1] = 0); the last end is
/// exactly media_length. Empty when chunking is disabled.
[[nodiscard]] std::vector<double> chunk_ends(const ChunkingConfig& config,
                                             double media_length);

/// One in-place repair applied to a stream's transmission: its end
/// moved from `old_end` to `new_end` — a retraction when the end moves
/// earlier (departures), a re-extension when a seek re-roots the
/// subtree and the new root must carry the full media.
struct StreamEdit {
  Index stream = -1;
  double old_end = 0.0;
  double new_end = 0.0;
  bool reroot = false;  ///< the stream was also detached from its parent

  friend bool operator==(const StreamEdit&, const StreamEdit&) = default;
};

/// The flat, arena-backed merge-plan IR. Immutable once built (use
/// `PlanBuilder`); movable but deliberately not copyable — plans can be
/// large and every consumer reads through `std::span` views.
class MergePlan {
 public:
  /// An empty plan (0 streams, media length 1).
  MergePlan() = default;
  MergePlan(MergePlan&&) noexcept = default;
  MergePlan& operator=(MergePlan&&) noexcept = default;
  MergePlan(const MergePlan&) = delete;
  MergePlan& operator=(const MergePlan&) = delete;

  /// Number of streams.
  [[nodiscard]] Index size() const noexcept { return n_; }
  /// Media length L in the producer's time unit.
  [[nodiscard]] double media_length() const noexcept { return media_length_; }
  /// Reception model the lengths were derived/validated under.
  [[nodiscard]] Model model() const noexcept { return model_; }
  /// Number of roots (full streams).
  [[nodiscard]] Index num_roots() const noexcept { return roots_; }
  /// The segment timeline the media is cut into (disabled by default;
  /// the unit-rate continuous checks are the degenerate case).
  [[nodiscard]] const ChunkingConfig& chunking() const noexcept {
    return chunking_;
  }
  /// True when a segment timeline is attached.
  [[nodiscard]] bool chunked() const noexcept { return chunking_.enabled(); }
  /// Cumulative chunk end positions (empty when not chunked).
  [[nodiscard]] std::span<const double> chunk_ends() const noexcept {
    return {chunk_ends_.data(), chunk_ends_.size()};
  }

  /// Transmission start time of each stream (nondecreasing in id).
  [[nodiscard]] std::span<const double> start() const noexcept {
    return {start_, un()};
  }
  /// Start-up delay attributed to each stream: the largest wait of any
  /// client it serves (0 for purely off-line plans, where clients start
  /// playback at their arrival instant).
  [[nodiscard]] std::span<const double> delay() const noexcept {
    return {delay_, un()};
  }
  /// Transmission duration of each stream.
  [[nodiscard]] std::span<const double> length() const noexcept {
    return {length_, un()};
  }
  /// Merge completion time: for a non-root x with parent p and last
  /// subtree arrival z, the instant its subtree has fully caught up
  /// with p — 2 z - p in the receive-two model, x + (z - p) in
  /// receive-all. For roots, the end of transmission.
  [[nodiscard]] std::span<const double> merge_time() const noexcept {
    return {merge_time_, un()};
  }
  /// Parent stream id (-1 for roots, always < the stream's own id).
  [[nodiscard]] std::span<const Index> parent() const noexcept {
    return {parent_, un()};
  }
  /// Children of `id`, ascending (a CSR range into one shared array).
  [[nodiscard]] std::span<const Index> children(Index id) const;

  /// End of transmission of stream `id`.
  [[nodiscard]] double end(Index id) const {
    return start_[check(id)] + length_[static_cast<std::size_t>(id)];
  }
  /// Root path x_0 < x_1 < ... < x_k = id (stream ids).
  [[nodiscard]] std::vector<Index> root_path(Index id) const;

  /// Total transmitted time-units: one flat pass over `length`. The
  /// continuous analogue of Fcost; equals the slotted full cost for
  /// slot-unit plans.
  [[nodiscard]] double total_cost() const noexcept;

  /// Peak number of simultaneously transmitting streams. Starts are
  /// already sorted, so only the ends sort: O(n log n) with one
  /// double-array sort, no event materialization. Ends count before
  /// starts at equal times (back-to-back streams can share a channel).
  [[nodiscard]] Index peak_bandwidth() const;

 private:
  friend class PlanBuilder;
  [[nodiscard]] std::size_t un() const noexcept {
    return static_cast<std::size_t>(n_);
  }
  [[nodiscard]] std::size_t check(Index id) const;

  double media_length_ = 1.0;
  Model model_ = Model::kReceiveTwo;
  ChunkingConfig chunking_;           ///< disabled unless the builder set one
  std::vector<double> chunk_ends_;    ///< cumulative ends; empty = unchunked
  Index n_ = 0;
  Index roots_ = 0;
  // The arena: one block per element type (doubles / Index), carved
  // into the parallel arrays below. Two allocations for the whole plan.
  std::unique_ptr<double[]> doubles_;
  std::unique_ptr<Index[]> indices_;
  double* start_ = nullptr;
  double* delay_ = nullptr;
  double* length_ = nullptr;
  double* merge_time_ = nullptr;
  Index* parent_ = nullptr;
  Index* child_offset_ = nullptr;  ///< n+1 CSR offsets
  Index* child_ = nullptr;         ///< n - roots child ids
};

/// Append-only construction of a MergePlan. Producers that know their
/// Lemma-1/Lemma-17 structure call the two-argument `add_stream` and
/// let `build` derive lengths; producers with explicit truncations (the
/// on-line policies, whose last block clips at the horizon only in
/// spirit) pass lengths directly.
class PlanBuilder {
 public:
  /// Throws std::invalid_argument unless media_length > 0.
  explicit PlanBuilder(double media_length, Model model = Model::kReceiveTwo);

  /// Appends a stream; returns its id. Length is derived at build():
  /// L for roots, the Lemma-1 (receive-two) or Lemma-17 (receive-all)
  /// truncation otherwise. Throws std::invalid_argument when `start`
  /// precedes the previous stream or `parent` is not an earlier-starting
  /// already-added stream (or -1).
  Index add_stream(double start, Index parent);

  /// As above with an explicit transmission duration (>= 0).
  Index add_stream(double start, Index parent, double length);

  /// Attaches a segment timeline to the plan under construction (and to
  /// every later `build` — the setting persists like the media length).
  /// Throws std::invalid_argument on an invalid config.
  void set_chunking(const ChunkingConfig& chunking);

  /// Records a client wait served by stream `id`; the stream's `delay`
  /// becomes the max over all recorded waits (default 0).
  void record_wait(Index id, double wait);

  /// Streams added so far.
  [[nodiscard]] Index size() const noexcept {
    return static_cast<Index>(start_.size());
  }

  /// Finalizes into the arena-backed plan: builds the CSR children
  /// ranges, computes subtree last-arrivals in one reverse pass,
  /// derives pending lengths and merge times. The builder is left
  /// empty and reusable.
  [[nodiscard]] MergePlan build();

 private:
  double media_length_;
  Model model_;
  ChunkingConfig chunking_;
  std::vector<double> start_;
  std::vector<double> delay_;
  std::vector<double> length_;  ///< NaN = derive from the model at build()
  std::vector<Index> parent_;
};

/// The invariant a diagnostic refers to.
enum class Invariant {
  kStructure,       ///< ids / parents / lengths / delays well-formed
  kMergeTime,       ///< merge_time disagrees with the Lemma geometry
  kPlayback,        ///< continuous-playback partition broken
  kModelLegality,   ///< too many concurrent reads for the model
  kBufferBound,     ///< Section-3.3 buffer bound exceeded
  kChunkStartRule,  ///< start-buffer fill exceeded its >= 2-chunk budget
  kChunkDeadline,   ///< a steady chunk completed after its playback deadline
  kChunkBuffer,     ///< chunk-granular buffer bound exceeded
};

/// Human-readable invariant name.
[[nodiscard]] const char* to_string(Invariant invariant) noexcept;

/// One structured verification failure: which node, which invariant,
/// observed vs expected — the machine-readable form of the verifier's
/// legacy one-line message (kept verbatim in `message`).
struct PlanDiagnostic {
  Invariant invariant = Invariant::kStructure;
  Index stream = -1;      ///< offending stream / client id; -1 = plan-wide
  double observed = 0.0;  ///< measured quantity (0 when not numeric)
  double expected = 0.0;  ///< the bound / expected value it violated
  std::string message;    ///< rendered one-liner ("client N: ...")
};

/// Outcome of `verify`: structured diagnostics (capped; the first one's
/// message doubles as `first_error` for legacy consumers) plus the
/// exact aggregate quantities every legacy walk used to compute
/// separately.
struct PlanReport {
  bool ok = true;
  std::string first_error;     ///< empty when ok
  std::vector<PlanDiagnostic> diagnostics;  ///< all failures, capped at 64
  Index clients = 0;           ///< clients checked (= active streams)
  Index max_concurrent = 0;    ///< peak streams any client reads at once
  double peak_buffer = 0.0;    ///< largest measured client buffer
  double buffer_bound = 0.0;   ///< largest Lemma-15 bound min(d, L-d)
  double max_delay = 0.0;      ///< largest per-stream start-up delay
  double total_cost = 0.0;     ///< sum of transmitted durations
  Index peak_bandwidth = 0;    ///< peak simultaneous streams
  double max_chunk_startup = 0.0;   ///< largest chunk-granular startup lag
  double chunk_peak_buffer = 0.0;   ///< largest whole-chunk buffer backlog
};

/// Options for `verify` beyond the model. The active mask supports
/// repaired plans (core/plan_repair): departed clients' streams stay in
/// the structure (their transmitted prefix is history) but no longer
/// have a viewer, so per-client playback checks apply to active streams
/// only. Structural checks always cover every stream.
struct VerifyOptions {
  /// Per-stream activity flags (size() entries, nonzero = a client is
  /// still watching). Empty = every stream has an active client.
  std::span<const std::uint8_t> active{};
};

/// The universal verifier. Checks, for the client arriving at every
/// stream's start:
///   1. structure: id order follows start order, parents start strictly
///      earlier, lengths lie in [0, L], delays are nonnegative;
///   2. continuous playback: the receiving-program pieces partition
///      (0, L], every piece lies within its source stream's transmitted
///      duration, and reception never trails playback;
///   3. model legality: at most two concurrent reads under receive-two
///      (receive-all may read the whole root path);
///   4. the Section-3.3 buffer bound: measured peak buffer is at most
///      min(d, L - d) under receive-two (Lemma 15), d under
///      receive-all, where d is the client's distance from its root;
///   5. IR integrity: merge_time matches the plan's own Lemma-1 /
///      Lemma-17 geometry;
/// and reports the exact total cost and peak bandwidth computed in one
/// flat pass over the arrays. When the plan carries a segment timeline,
/// each client is additionally checked at chunk granularity: the
/// minimum-start-buffer rule (playback may not lag the arrival by more
/// than the start buffer), every steady chunk's completion against its
/// playback deadline, and the whole-chunk buffer backlog against the
/// continuous bound plus the start buffer. Aggregate work is O(n log n)
/// plus the per-client programs (O(depth^2 + chunks) each).
[[nodiscard]] PlanReport verify(const MergePlan& plan, Model model,
                                const VerifyOptions& options);

/// Verifies with every client active.
[[nodiscard]] inline PlanReport verify(const MergePlan& plan, Model model) {
  return verify(plan, model, VerifyOptions{});
}

/// Verifies under the model the plan was built with.
[[nodiscard]] inline PlanReport verify(const MergePlan& plan) {
  return verify(plan, plan.model());
}

/// Per-client verification outcome (one stream's client).
struct ClientReport {
  Index client = -1;
  bool ok = true;
  std::string error;         ///< first violated invariant, "client N: ..."
  std::vector<PlanDiagnostic> diagnostics;  ///< every violated invariant
  Index max_concurrent = 0;  ///< peak simultaneous stream reads
  double peak_buffer = 0.0;  ///< peak buffered media (time units)
  double buffer_bound = 0.0; ///< the Section-3.3 bound for this client
  double chunk_startup = 0.0;      ///< chunk-granular startup lag (chunked)
  double chunk_peak_buffer = 0.0;  ///< whole-chunk buffer backlog (chunked)
};

/// Verifies invariants 2-4 for the single client arriving at stream
/// `client`'s start. Throws std::out_of_range on a bad id.
[[nodiscard]] ClientReport verify_client(const MergePlan& plan, Index client,
                                         Model model);

/// One piece of a client's continuous receiving program: media
/// positions (from, to] taken from `stream`, received over the time
/// window [start(stream) + from, start(stream) + to].
struct Piece {
  Index stream = -1;
  double from = 0.0;
  double to = 0.0;
};

/// The continuous receiving program of the client arriving at stream
/// `client`'s start (Section 2's stage rules / Lemma 17, in continuous
/// time). Empty pieces are dropped. Throws std::out_of_range on a bad
/// id.
[[nodiscard]] std::vector<Piece> client_program(const MergePlan& plan,
                                                Index client, Model model);

/// Serializes a plan as a `smerge-plan-v2` JSON document (field arrays,
/// the segment timeline, any repair events, plus the verifier's
/// aggregate report with structured diagnostics) — the dump format
/// `tools/plan_dump.py` pretty-prints. `repairs` lists the in-place
/// edits that produced the plan (empty for pristine plans); `active`
/// marks which streams still have viewers (empty = all) and is the mask
/// the embedded verify runs under.
[[nodiscard]] std::string to_json(const MergePlan& plan,
                                  std::span<const StreamEdit> repairs = {},
                                  std::span<const std::uint8_t> active = {});

}  // namespace smerge::plan

#endif  // SMERGE_CORE_PLAN_H
