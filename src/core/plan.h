// The canonical stream-plan IR ("MergePlan") and its universal verifier.
//
// Every subsystem of this repository ultimately describes the same
// artifact — a forest of (possibly truncated) streams in which later
// streams merge into earlier ones under the continuous-playback
// constraint. Historically each layer encoded it its own way: the
// slotted `core/merge_forest` trees, the continuous
// `merging/general_forest`, and the `schedule/*` slot structures, each
// with private cost / peak-bandwidth / traversal code. `MergePlan` is
// the one flat format they all now emit and consume:
//
//  * SoA layout — parallel arrays `{start, delay, parent, merge_time,
//    length}` indexed by stream id (ids are nondecreasing in start
//    time), children stored as CSR-style ranges. The whole plan lives
//    in two arena blocks (one per element type), no per-node
//    allocation, so the hot cost/peak passes are straight-line scans
//    over contiguous memory.
//  * One verifier — `plan::verify` checks, for any producer, the
//    paper's full invariant set in a single walk: continuous playback
//    (the pieces of every client's receiving program partition
//    (0, L]), the Section-3.3 buffer bound b(x) = min(d, L - d),
//    receive-two vs receive-all legality, merge completion in time,
//    and the exact total cost / peak bandwidth. It subsumes the
//    continuous-forest checks of `merging/continuous_playback` and
//    the per-forest `total_cost` / `peak_concurrency` walks.
//
// Units are whatever the producer used: slots for the delay-guaranteed
// substrate (media length L, integer starts), normalized media lengths
// for the simulation engine (media length 1.0). All formulas depend
// only on differences, so the verifier never needs to know.
#ifndef SMERGE_CORE_PLAN_H
#define SMERGE_CORE_PLAN_H

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/model.h"
#include "fib/fibonacci.h"

namespace smerge::plan {

class PlanBuilder;

/// The flat, arena-backed merge-plan IR. Immutable once built (use
/// `PlanBuilder`); movable but deliberately not copyable — plans can be
/// large and every consumer reads through `std::span` views.
class MergePlan {
 public:
  /// An empty plan (0 streams, media length 1).
  MergePlan() = default;
  MergePlan(MergePlan&&) noexcept = default;
  MergePlan& operator=(MergePlan&&) noexcept = default;
  MergePlan(const MergePlan&) = delete;
  MergePlan& operator=(const MergePlan&) = delete;

  /// Number of streams.
  [[nodiscard]] Index size() const noexcept { return n_; }
  /// Media length L in the producer's time unit.
  [[nodiscard]] double media_length() const noexcept { return media_length_; }
  /// Reception model the lengths were derived/validated under.
  [[nodiscard]] Model model() const noexcept { return model_; }
  /// Number of roots (full streams).
  [[nodiscard]] Index num_roots() const noexcept { return roots_; }

  /// Transmission start time of each stream (nondecreasing in id).
  [[nodiscard]] std::span<const double> start() const noexcept {
    return {start_, un()};
  }
  /// Start-up delay attributed to each stream: the largest wait of any
  /// client it serves (0 for purely off-line plans, where clients start
  /// playback at their arrival instant).
  [[nodiscard]] std::span<const double> delay() const noexcept {
    return {delay_, un()};
  }
  /// Transmission duration of each stream.
  [[nodiscard]] std::span<const double> length() const noexcept {
    return {length_, un()};
  }
  /// Merge completion time: for a non-root x with parent p and last
  /// subtree arrival z, the instant its subtree has fully caught up
  /// with p — 2 z - p in the receive-two model, x + (z - p) in
  /// receive-all. For roots, the end of transmission.
  [[nodiscard]] std::span<const double> merge_time() const noexcept {
    return {merge_time_, un()};
  }
  /// Parent stream id (-1 for roots, always < the stream's own id).
  [[nodiscard]] std::span<const Index> parent() const noexcept {
    return {parent_, un()};
  }
  /// Children of `id`, ascending (a CSR range into one shared array).
  [[nodiscard]] std::span<const Index> children(Index id) const;

  /// End of transmission of stream `id`.
  [[nodiscard]] double end(Index id) const {
    return start_[check(id)] + length_[static_cast<std::size_t>(id)];
  }
  /// Root path x_0 < x_1 < ... < x_k = id (stream ids).
  [[nodiscard]] std::vector<Index> root_path(Index id) const;

  /// Total transmitted time-units: one flat pass over `length`. The
  /// continuous analogue of Fcost; equals the slotted full cost for
  /// slot-unit plans.
  [[nodiscard]] double total_cost() const noexcept;

  /// Peak number of simultaneously transmitting streams. Starts are
  /// already sorted, so only the ends sort: O(n log n) with one
  /// double-array sort, no event materialization. Ends count before
  /// starts at equal times (back-to-back streams can share a channel).
  [[nodiscard]] Index peak_bandwidth() const;

 private:
  friend class PlanBuilder;
  [[nodiscard]] std::size_t un() const noexcept {
    return static_cast<std::size_t>(n_);
  }
  [[nodiscard]] std::size_t check(Index id) const;

  double media_length_ = 1.0;
  Model model_ = Model::kReceiveTwo;
  Index n_ = 0;
  Index roots_ = 0;
  // The arena: one block per element type (doubles / Index), carved
  // into the parallel arrays below. Two allocations for the whole plan.
  std::unique_ptr<double[]> doubles_;
  std::unique_ptr<Index[]> indices_;
  double* start_ = nullptr;
  double* delay_ = nullptr;
  double* length_ = nullptr;
  double* merge_time_ = nullptr;
  Index* parent_ = nullptr;
  Index* child_offset_ = nullptr;  ///< n+1 CSR offsets
  Index* child_ = nullptr;         ///< n - roots child ids
};

/// Append-only construction of a MergePlan. Producers that know their
/// Lemma-1/Lemma-17 structure call the two-argument `add_stream` and
/// let `build` derive lengths; producers with explicit truncations (the
/// on-line policies, whose last block clips at the horizon only in
/// spirit) pass lengths directly.
class PlanBuilder {
 public:
  /// Throws std::invalid_argument unless media_length > 0.
  explicit PlanBuilder(double media_length, Model model = Model::kReceiveTwo);

  /// Appends a stream; returns its id. Length is derived at build():
  /// L for roots, the Lemma-1 (receive-two) or Lemma-17 (receive-all)
  /// truncation otherwise. Throws std::invalid_argument when `start`
  /// precedes the previous stream or `parent` is not an earlier-starting
  /// already-added stream (or -1).
  Index add_stream(double start, Index parent);

  /// As above with an explicit transmission duration (>= 0).
  Index add_stream(double start, Index parent, double length);

  /// Records a client wait served by stream `id`; the stream's `delay`
  /// becomes the max over all recorded waits (default 0).
  void record_wait(Index id, double wait);

  /// Streams added so far.
  [[nodiscard]] Index size() const noexcept {
    return static_cast<Index>(start_.size());
  }

  /// Finalizes into the arena-backed plan: builds the CSR children
  /// ranges, computes subtree last-arrivals in one reverse pass,
  /// derives pending lengths and merge times. The builder is left
  /// empty and reusable.
  [[nodiscard]] MergePlan build();

 private:
  double media_length_;
  Model model_;
  std::vector<double> start_;
  std::vector<double> delay_;
  std::vector<double> length_;  ///< NaN = derive from the model at build()
  std::vector<Index> parent_;
};

/// Outcome of `verify`: the first violated invariant plus the exact
/// aggregate quantities every legacy walk used to compute separately.
struct PlanReport {
  bool ok = true;
  std::string first_error;     ///< empty when ok
  Index clients = 0;           ///< clients checked (= streams)
  Index max_concurrent = 0;    ///< peak streams any client reads at once
  double peak_buffer = 0.0;    ///< largest measured client buffer
  double buffer_bound = 0.0;   ///< largest Lemma-15 bound min(d, L-d)
  double max_delay = 0.0;      ///< largest per-stream start-up delay
  double total_cost = 0.0;     ///< sum of transmitted durations
  Index peak_bandwidth = 0;    ///< peak simultaneous streams
};

/// The universal verifier. Checks, for the client arriving at every
/// stream's start:
///   1. structure: id order follows start order, parents start strictly
///      earlier, lengths lie in [0, L], delays are nonnegative;
///   2. continuous playback: the receiving-program pieces partition
///      (0, L], every piece lies within its source stream's transmitted
///      duration, and reception never trails playback;
///   3. model legality: at most two concurrent reads under receive-two
///      (receive-all may read the whole root path);
///   4. the Section-3.3 buffer bound: measured peak buffer is at most
///      min(d, L - d) under receive-two (Lemma 15), d under
///      receive-all, where d is the client's distance from its root;
///   5. IR integrity: merge_time matches the plan's own Lemma-1 /
///      Lemma-17 geometry;
/// and reports the exact total cost and peak bandwidth computed in one
/// flat pass over the arrays. Aggregate work is O(n log n) plus the
/// per-client programs (O(depth^2) each, depth = root-path length).
[[nodiscard]] PlanReport verify(const MergePlan& plan, Model model);

/// Verifies under the model the plan was built with.
[[nodiscard]] inline PlanReport verify(const MergePlan& plan) {
  return verify(plan, plan.model());
}

/// Per-client verification outcome (one stream's client).
struct ClientReport {
  Index client = -1;
  bool ok = true;
  std::string error;         ///< first violated invariant, "client N: ..."
  Index max_concurrent = 0;  ///< peak simultaneous stream reads
  double peak_buffer = 0.0;  ///< peak buffered media (time units)
  double buffer_bound = 0.0; ///< the Section-3.3 bound for this client
};

/// Verifies invariants 2-4 for the single client arriving at stream
/// `client`'s start. Throws std::out_of_range on a bad id.
[[nodiscard]] ClientReport verify_client(const MergePlan& plan, Index client,
                                         Model model);

/// One piece of a client's continuous receiving program: media
/// positions (from, to] taken from `stream`, received over the time
/// window [start(stream) + from, start(stream) + to].
struct Piece {
  Index stream = -1;
  double from = 0.0;
  double to = 0.0;
};

/// The continuous receiving program of the client arriving at stream
/// `client`'s start (Section 2's stage rules / Lemma 17, in continuous
/// time). Empty pieces are dropped. Throws std::out_of_range on a bad
/// id.
[[nodiscard]] std::vector<Piece> client_program(const MergePlan& plan,
                                                Index client, Model model);

/// Serializes a plan as a `smerge-plan-v1` JSON document (field arrays
/// plus the verifier's aggregate report) — the dump format
/// `tools/plan_dump.py` pretty-prints.
[[nodiscard]] std::string to_json(const MergePlan& plan);

}  // namespace smerge::plan

#endif  // SMERGE_CORE_PLAN_H
