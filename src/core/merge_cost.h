// Optimal merge-cost functions of the paper (Section 3.1 and Section 3.4).
//
// The delay-guaranteed model has one arrival per slot, so a horizon of n
// slots is the arrival sequence 0, 1, ..., n-1. M(n) is the minimum merge
// cost (total truncated-stream bandwidth, root excluded) over all merge
// trees for those arrivals.
//
// Receive-two model:
//   Recurrence (Eq. 5):  M(n) = min_{1<=h<=n-1} { M(h) + M(n-h) + 2n-h-2 }
//   Closed form (Eq. 6): M(n) = (k-1) n - F_{k+2} + 2   for F_k <= n <= F_{k+1}
// Receive-all model (Section 3.4):
//   Recurrence (Eq. 19): Mw(n) = min_h { Mw(h) + Mw(n-h) } + n - 1
//   Closed form (Eq. 20): Mw(n) = (k+1) n - 2^{k+1} + 1  for 2^k <= n <= 2^{k+1}
//
// Theorem 3 additionally characterizes I(n) — the set of arrivals that can
// be the *last* to merge with the root in an optimal tree — as an interval
// whose endpoints are Fibonacci expressions; the O(n) tree construction of
// Theorem 7 consumes r(i) = max I(i).
#ifndef SMERGE_CORE_MERGE_COST_H
#define SMERGE_CORE_MERGE_COST_H

#include <vector>

#include "core/model.h"
#include "fib/fibonacci.h"

namespace smerge {

/// Largest horizon accepted by the closed-form cost functions. Guards the
/// 64-bit products (k-1)*n; far beyond any in-memory instance.
inline constexpr Index kMaxHorizon = 1'000'000'000'000'000;  // 10^15

/// Optimal merge cost M(n) via the Fibonacci closed form (Eq. 6).
/// M(0) = M(1) = 0. O(log n). Throws std::invalid_argument for n < 0 or
/// n > kMaxHorizon.
[[nodiscard]] Cost merge_cost(Index n);

/// Optimal receive-all merge cost Mw(n) via Eq. (20). M(0) = M(1) = 0.
[[nodiscard]] Cost merge_cost_receive_all(Index n);

/// Model-dispatching convenience wrapper.
[[nodiscard]] Cost merge_cost(Index n, Model model);

/// Reference O(n_max^2) dynamic program evaluating the recurrence directly
/// (Eq. 5 for receive-two, Eq. 19 for receive-all). Returns the table
/// M[0..n_max]. Used by tests as ground truth and by the complexity bench
/// as the quadratic baseline the paper improves upon.
[[nodiscard]] std::vector<Cost> merge_cost_table_dp(Index n_max,
                                                    Model model = Model::kReceiveTwo);

/// The cost H(n,h) of making h the last arrival to merge with the root
/// (Eq. 7): H(n,h) = M(h) + M(n-h) + 2n - h - 2. Requires 1 <= h <= n-1.
[[nodiscard]] Cost last_merge_cost(Index n, Index h);

/// A closed interval of arrival indices.
struct IndexInterval {
  Index lo;
  Index hi;

  [[nodiscard]] bool contains(Index x) const noexcept { return lo <= x && x <= hi; }
  [[nodiscard]] Index width() const noexcept { return hi - lo + 1; }
  friend bool operator==(const IndexInterval&, const IndexInterval&) = default;
};

/// I(n) — the interval of arrivals that can be the last merge with the
/// root in an optimal merge tree for [0, n-1] (Theorem 3). Requires n >= 2.
[[nodiscard]] IndexInterval last_merge_interval(Index n);

/// I(n) computed from the DP by collecting every argmin of H(n, .).
/// Verifies the argmin set is contiguous (it always is; Theorem 3) and
/// returns it as an interval. O(n_max^2); test/ground-truth only.
[[nodiscard]] std::vector<IndexInterval> last_merge_intervals_dp(Index n_max);

/// r(i) = max I(i) for 1 <= i <= n_max via the linear-time recurrence in
/// the proof of Theorem 7; r(1) = 0 is the single-arrival sentinel.
/// Index 0 of the returned vector is unused (set to 0).
[[nodiscard]] std::vector<Index> last_merge_table(Index n_max);

/// r(n) = max I(n) in O(log n) straight from the Theorem-3 intervals.
[[nodiscard]] Index last_merge_root(Index n);

}  // namespace smerge

#endif  // SMERGE_CORE_MERGE_COST_H
