#include "core/merge_cost.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <string>

namespace smerge {

namespace {

void check_horizon(Index n, const char* fn) {
  if (n < 0 || n > kMaxHorizon) {
    throw std::invalid_argument(std::string(fn) + ": n outside [0, 10^15]");
  }
}

}  // namespace

Cost merge_cost(Index n) {
  check_horizon(n, "merge_cost");
  if (n <= 1) return 0;
  const fib::Bracket b = fib::decompose(n);
  // Eq. (6): M(n) = (k-1) n - F_{k+2} + 2.
  return static_cast<Cost>(b.k - 1) * n - fib::fibonacci(b.k + 2) + 2;
}

Cost merge_cost_receive_all(Index n) {
  check_horizon(n, "merge_cost_receive_all");
  if (n <= 1) return 0;
  // Largest k with 2^k <= n.
  const int k = static_cast<int>(std::bit_width(static_cast<std::uint64_t>(n))) - 1;
  // Eq. (20): Mw(n) = (k+1) n - 2^{k+1} + 1.
  return static_cast<Cost>(k + 1) * n - (Cost{1} << (k + 1)) + 1;
}

Cost merge_cost(Index n, Model model) {
  return model == Model::kReceiveTwo ? merge_cost(n) : merge_cost_receive_all(n);
}

std::vector<Cost> merge_cost_table_dp(Index n_max, Model model) {
  check_horizon(n_max, "merge_cost_table_dp");
  std::vector<Cost> m(static_cast<std::size_t>(n_max) + 1, 0);
  for (Index n = 2; n <= n_max; ++n) {
    Cost best = std::numeric_limits<Cost>::max();
    for (Index h = 1; h <= n - 1; ++h) {
      const Cost sub = m[static_cast<std::size_t>(h)] + m[static_cast<std::size_t>(n - h)];
      const Cost attach = model == Model::kReceiveTwo ? (2 * n - h - 2) : (n - 1);
      best = std::min(best, sub + attach);
    }
    m[static_cast<std::size_t>(n)] = best;
  }
  return m;
}

Cost last_merge_cost(Index n, Index h) {
  if (n < 2 || h < 1 || h > n - 1) {
    throw std::invalid_argument("last_merge_cost: requires n >= 2 and 1 <= h <= n-1");
  }
  return merge_cost(h) + merge_cost(n - h) + 2 * n - h - 2;
}

IndexInterval last_merge_interval(Index n) {
  if (n < 2) {
    throw std::invalid_argument("last_merge_interval: requires n >= 2");
  }
  check_horizon(n, "last_merge_interval");
  // Theorem 3 with the canonical decomposition n = F_k + m, 0 <= m < F_{k-1}:
  //   m <= F_{k-3}:            I1 = [F_{k-1},     F_{k-1} + m]
  //   F_{k-3} <= m <= F_{k-2}: I2 = [F_{k-2} + m, F_{k-1} + m]
  //   F_{k-2} <= m:            I3 = [F_{k-2} + m, F_k]
  // The cases agree on their shared boundaries, so lo/hi can be picked
  // independently.
  const fib::Bracket b = fib::decompose(n);
  const std::int64_t f_k3 = b.k >= 3 ? fib::fibonacci(b.k - 3) : 0;
  const std::int64_t f_k2 = fib::fibonacci(b.k - 2);
  const std::int64_t f_k1 = fib::fibonacci(b.k - 1);
  const Index lo = b.m <= f_k3 ? f_k1 : f_k2 + b.m;
  const Index hi = b.m <= f_k2 ? f_k1 + b.m : b.fk;
  return IndexInterval{lo, hi};
}

std::vector<IndexInterval> last_merge_intervals_dp(Index n_max) {
  check_horizon(n_max, "last_merge_intervals_dp");
  const std::vector<Cost> m = merge_cost_table_dp(n_max);
  std::vector<IndexInterval> out(static_cast<std::size_t>(std::max<Index>(n_max, 1)) + 1,
                                 IndexInterval{0, 0});
  for (Index n = 2; n <= n_max; ++n) {
    Cost best = std::numeric_limits<Cost>::max();
    for (Index h = 1; h <= n - 1; ++h) {
      best = std::min(best, m[static_cast<std::size_t>(h)] +
                                m[static_cast<std::size_t>(n - h)] + 2 * n - h - 2);
    }
    Index lo = -1;
    Index hi = -1;
    bool in_run = false;
    for (Index h = 1; h <= n - 1; ++h) {
      const Cost c = m[static_cast<std::size_t>(h)] +
                     m[static_cast<std::size_t>(n - h)] + 2 * n - h - 2;
      if (c == best) {
        if (!in_run) {
          if (lo != -1) {
            // A second run would falsify Theorem 3's interval claim.
            throw std::logic_error("last_merge_intervals_dp: argmin set not contiguous");
          }
          lo = h;
          in_run = true;
        }
        hi = h;
      } else {
        in_run = false;
      }
    }
    out[static_cast<std::size_t>(n)] = IndexInterval{lo, hi};
  }
  return out;
}

std::vector<Index> last_merge_table(Index n_max) {
  check_horizon(n_max, "last_merge_table");
  std::vector<Index> r(static_cast<std::size_t>(std::max<Index>(n_max, 1)) + 1, 0);
  if (n_max >= 2) r[2] = 1;
  // Recurrence from the proof of Theorem 7, with F_k < i <= F_{k+1}:
  //   r(i) = r(i-1) + 1   if F_k < i <= F_k + F_{k-2}
  //   r(i) = r(i-1)       if F_k + F_{k-2} < i <= F_{k+1}
  int k = 3;  // bracket for i = 3: F_3 = 2 < 3 <= F_4 = 3
  for (Index i = 3; i <= n_max; ++i) {
    while (i > fib::fibonacci(k + 1)) ++k;
    const bool grows = i <= fib::fibonacci(k) + fib::fibonacci(k - 2);
    r[static_cast<std::size_t>(i)] =
        r[static_cast<std::size_t>(i - 1)] + (grows ? 1 : 0);
  }
  return r;
}

Index last_merge_root(Index n) {
  return last_merge_interval(n).hi;
}

}  // namespace smerge
