// Client buffer requirements (Section 3.3, Lemma 15).
//
// A client arriving at global time x in a tree rooted at r buffers ahead
// while receiving two streams; the peak occupancy is
//   b(x) = min{ x - r, L - (x - r) }
// so no client ever needs more than floor(L/2) slots of buffer. These
// helpers give the analytic values; the playback simulator in
// src/schedule measures the same quantity empirically and the tests check
// they agree.
#ifndef SMERGE_CORE_BUFFER_H
#define SMERGE_CORE_BUFFER_H

#include "core/merge_forest.h"
#include "core/merge_tree.h"

namespace smerge {

/// Lemma 15: peak buffer occupancy of a client `offset` slots after its
/// tree root, for media length L. Requires 0 <= offset <= L-1.
[[nodiscard]] Index buffer_requirement(Index offset_from_root, Index media_length);

/// Largest Lemma-15 requirement over all arrivals of the tree.
[[nodiscard]] Index max_buffer_requirement(const MergeTree& tree, Index media_length);

/// Largest Lemma-15 requirement over all arrivals of the forest.
[[nodiscard]] Index max_buffer_requirement(const MergeForest& forest);

}  // namespace smerge

#endif  // SMERGE_CORE_BUFFER_H
