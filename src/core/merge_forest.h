// Merge forests (Section 2, "Full cost").
//
// A merge forest for the arrivals [0, n-1] is a sequence of merge trees
// covering consecutive arrival blocks. Each tree root is a *full stream*
// of length L (the media length in slots); every other stream is truncated
// per Lemma 1 / Lemma 17. The full cost is
//   Fcost(F) = s * L + sum_i Mcost(T_i)
// — the total server bandwidth in slot units needed to serve all clients.
#ifndef SMERGE_CORE_MERGE_FOREST_H
#define SMERGE_CORE_MERGE_FOREST_H

#include <vector>

#include "core/merge_tree.h"

namespace smerge {

/// An immutable merge forest over the global arrivals 0..size()-1 with a
/// fixed media length L. Tree t covers the arrival block
/// [tree_offset(t), tree_offset(t) + tree(t).size()).
class MergeForest {
 public:
  /// Assembles a forest from trees laid out consecutively from arrival 0.
  /// Every tree must fit the media length (span <= L-1); throws
  /// std::invalid_argument otherwise or when `trees` is empty / L < 1.
  MergeForest(Index media_length, std::vector<MergeTree> trees);

  /// Media length L in slots.
  [[nodiscard]] Index media_length() const noexcept { return media_length_; }
  /// Total number of arrivals n.
  [[nodiscard]] Index size() const noexcept { return total_; }
  /// Number of trees (= full streams) s.
  [[nodiscard]] Index num_trees() const noexcept { return static_cast<Index>(trees_.size()); }

  /// Tree t (0-based). Throws std::out_of_range.
  [[nodiscard]] const MergeTree& tree(Index t) const;
  /// Global arrival time of tree t's root.
  [[nodiscard]] Index tree_offset(Index t) const;
  /// Index of the tree containing global arrival x. O(log s).
  [[nodiscard]] Index tree_of(Index arrival) const;

  /// Actual transmitted length of the stream started at global arrival x:
  /// L for roots, Lemma-1/Lemma-17 lengths otherwise.
  [[nodiscard]] Cost stream_length(Index arrival, Model model = Model::kReceiveTwo) const;

  /// Fcost: s*L + sum of merge costs (Section 2 / Section 3.4).
  [[nodiscard]] Cost full_cost(Model model = Model::kReceiveTwo) const;

  /// Average server bandwidth Fcost/n in streams-per-slot units.
  [[nodiscard]] double average_bandwidth(Model model = Model::kReceiveTwo) const;

  /// True iff every tree is a feasible L-tree under `model` (all stream
  /// lengths at most L). The constructor only enforces the span condition;
  /// the schedule/playback layer additionally requires this.
  [[nodiscard]] bool feasible(Model model = Model::kReceiveTwo) const;

  /// The canonical-IR view: stream id = global arrival, start = arrival
  /// slot, parents within each tree, lengths per Lemma 1 / Lemma 17 (L
  /// for roots). `plan::verify` on the result checks the full paper
  /// invariant set, subsuming the per-forest walks.
  [[nodiscard]] plan::MergePlan to_plan(Model model = Model::kReceiveTwo) const;

 private:
  Index media_length_;
  Index total_ = 0;
  std::vector<MergeTree> trees_;
  std::vector<Index> offsets_;
};

}  // namespace smerge

#endif  // SMERGE_CORE_MERGE_FOREST_H
