#include "core/plan_io.h"

#include <cstddef>

namespace smerge::plan {

namespace {

// Per-stream payload: start + delay + length (f64) + parent (i64).
constexpr std::size_t kStreamBytes = 4 * 8;

[[nodiscard]] Model decode_model(std::uint8_t tag) {
  switch (tag) {
    case 0:
      return Model::kReceiveTwo;
    case 1:
      return Model::kReceiveAll;
    default:
      throw util::SnapshotError("plan_io: bad model tag " +
                                std::to_string(tag));
  }
}

[[nodiscard]] SessionEventType decode_event_type(std::uint8_t tag) {
  switch (tag) {
    case 0:
      return SessionEventType::kPause;
    case 1:
      return SessionEventType::kSeek;
    case 2:
      return SessionEventType::kAbandon;
    default:
      throw util::SnapshotError("plan_io: bad session event tag " +
                                std::to_string(tag));
  }
}

}  // namespace

void save_plan(util::SnapshotWriter& w, const MergePlan& plan) {
  w.f64(plan.media_length());
  w.u8(plan.model() == Model::kReceiveTwo ? 0 : 1);
  const ChunkingConfig& chunking = plan.chunking();
  w.f64(chunking.base);
  w.f64(chunking.growth);
  w.f64(chunking.cap);
  w.i64(chunking.min_start_chunks);
  w.u64(static_cast<std::uint64_t>(plan.size()));
  const auto start = plan.start();
  const auto delay = plan.delay();
  const auto length = plan.length();
  const auto parent = plan.parent();
  for (Index i = 0; i < plan.size(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    w.f64(start[u]);
    w.f64(delay[u]);
    w.f64(length[u]);
    w.i64(parent[u]);
  }
}

MergePlan load_plan(util::SnapshotReader& r) {
  const double media_length = r.f64();
  const Model model = decode_model(r.u8());
  ChunkingConfig chunking;
  chunking.base = r.f64();
  chunking.growth = r.f64();
  chunking.cap = r.f64();
  chunking.min_start_chunks = r.i64();
  const std::uint64_t n = r.u64();
  if (n > r.remaining() / kStreamBytes) {
    throw util::SnapshotError("plan_io: stream count exceeds remaining bytes");
  }
  PlanBuilder builder(media_length, model);
  if (chunking.enabled()) builder.set_chunking(chunking);
  for (std::uint64_t i = 0; i < n; ++i) {
    const double start = r.f64();
    const double delay = r.f64();
    const double length = r.f64();
    const Index parent = r.i64();
    const Index id = builder.add_stream(start, parent, length);
    if (delay != 0.0) builder.record_wait(id, delay);
  }
  return builder.build();
}

void save_edits(util::SnapshotWriter& w, std::span<const StreamEdit> edits) {
  w.u64(edits.size());
  for (const StreamEdit& e : edits) {
    w.i64(e.stream);
    w.f64(e.old_end);
    w.f64(e.new_end);
    w.boolean(e.reroot);
  }
}

std::vector<StreamEdit> load_edits(util::SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  // stream + old_end + new_end + reroot byte.
  if (n > r.remaining() / 25) {
    throw util::SnapshotError("plan_io: edit count exceeds remaining bytes");
  }
  std::vector<StreamEdit> edits(static_cast<std::size_t>(n));
  for (StreamEdit& e : edits) {
    e.stream = r.i64();
    e.old_end = r.f64();
    e.new_end = r.f64();
    e.reroot = r.boolean();
  }
  return edits;
}

void save_repair_stats(util::SnapshotWriter& w, const RepairStats& stats) {
  w.i64(stats.abandons);
  w.i64(stats.seeks);
  w.i64(stats.reroots);
  w.i64(stats.truncations);
  w.i64(stats.extensions);
  w.f64(stats.retracted);
  w.f64(stats.extended);
}

RepairStats load_repair_stats(util::SnapshotReader& r) {
  RepairStats stats;
  stats.abandons = r.i64();
  stats.seeks = r.i64();
  stats.reroots = r.i64();
  stats.truncations = r.i64();
  stats.extensions = r.i64();
  stats.retracted = r.f64();
  stats.extended = r.f64();
  return stats;
}

void save_session_trace(util::SnapshotWriter& w, const SessionTrace& trace) {
  w.f64(trace.arrival);
  w.u64(trace.events.size());
  for (const SessionEvent& e : trace.events) {
    switch (e.type) {
      case SessionEventType::kPause:
        w.u8(0);
        break;
      case SessionEventType::kSeek:
        w.u8(1);
        break;
      case SessionEventType::kAbandon:
        w.u8(2);
        break;
    }
    w.f64(e.position);
    w.f64(e.value);
  }
}

SessionTrace load_session_trace(util::SnapshotReader& r) {
  SessionTrace trace;
  trace.arrival = r.f64();
  const std::uint64_t n = r.u64();
  // type byte + position + value.
  if (n > r.remaining() / 17) {
    throw util::SnapshotError("plan_io: event count exceeds remaining bytes");
  }
  trace.events.resize(static_cast<std::size_t>(n));
  for (SessionEvent& e : trace.events) {
    e.type = decode_event_type(r.u8());
    e.position = r.f64();
    e.value = r.f64();
  }
  return trace;
}

void save_session_traces(util::SnapshotWriter& w,
                         std::span<const SessionTrace> traces) {
  w.u64(traces.size());
  for (const SessionTrace& t : traces) save_session_trace(w, t);
}

std::vector<SessionTrace> load_session_traces(util::SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  // Minimum trace payload: arrival + event count.
  if (n > r.remaining() / 16) {
    throw util::SnapshotError("plan_io: trace count exceeds remaining bytes");
  }
  std::vector<SessionTrace> traces;
  traces.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    traces.push_back(load_session_trace(r));
  }
  return traces;
}

}  // namespace smerge::plan
