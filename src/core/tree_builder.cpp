#include "core/tree_builder.h"

#include <random>
#include <stdexcept>

namespace smerge {

namespace {

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

// Fills parents for the arrival block [lo, hi] (labels are tree-local).
// split(len) must return the size of the left part (= the last arrival to
// merge with the root, h) for a block of `len` arrivals.
void build_recursive(Index lo, Index hi, const std::function<Index(Index)>& split,
                     std::vector<Index>& parents) {
  if (lo == hi) return;
  const Index len = hi - lo + 1;
  const Index h = split(len);
  if (h < 1 || h > len - 1) {
    throw std::logic_error("tree_builder: split size outside [1, len-1]");
  }
  const Index mid = lo + h;
  // Attach the root of the right block as the last child of the left root.
  parents[index_of(mid)] = lo;
  build_recursive(lo, mid - 1, split, parents);
  build_recursive(mid, hi, split, parents);
}

MergeTree build_with_split(Index n, const std::function<Index(Index)>& split) {
  if (n < 1) throw std::invalid_argument("tree_builder: n >= 1 required");
  std::vector<Index> parents(index_of(n), -1);
  build_recursive(0, n - 1, split, parents);
  return MergeTree(std::move(parents));
}

}  // namespace

MergeTree optimal_merge_tree(Index n, Model model) {
  if (model == Model::kReceiveAll) {
    // Section 3.4: the midpoint split attains Eq. (19)'s minimum.
    return build_with_split(n, [](Index len) { return len / 2; });
  }
  if (n < 1 || n > kMaxHorizon) {
    throw std::invalid_argument("optimal_merge_tree: n outside [1, 10^15]");
  }
  // Theorem 7's pipeline: materialize r(i) once in O(n), then split by
  // table lookup — O(n) total instead of the O(n log n) a per-split
  // closed-form evaluation would give.
  const std::vector<Index> r_table = last_merge_table(n);
  return build_with_split(n, [&r_table](Index len) { return r_table[index_of(len)]; });
}

MergeTree optimal_merge_tree_with_table(Index n, const std::vector<Index>& r_table) {
  if (n < 1) throw std::invalid_argument("optimal_merge_tree_with_table: n >= 1 required");
  if (static_cast<Index>(r_table.size()) <= n) {
    throw std::invalid_argument("optimal_merge_tree_with_table: table too short");
  }
  return build_with_split(n, [&r_table](Index len) { return r_table[index_of(len)]; });
}

MergeTree fibonacci_merge_tree(int k) {
  if (k < 2 || k > fib::kMaxIndex) {
    throw std::invalid_argument("fibonacci_merge_tree: k outside [2, 92]");
  }
  return optimal_merge_tree(fib::fibonacci(k));
}

plan::MergePlan optimal_merge_plan(Index media_length, Index n, Model model) {
  if (media_length < 1) {
    throw std::invalid_argument("optimal_merge_plan: media length >= 1 required");
  }
  return optimal_merge_tree(n, model).to_plan(media_length, model);
}

void enumerate_merge_trees(Index n, const std::function<void(const MergeTree&)>& fn) {
  if (n < 1) throw std::invalid_argument("enumerate_merge_trees: n >= 1 required");
  std::vector<Index> parents(index_of(n), -1);
  std::vector<Index> rightmost{0};

  // Depth-first choice of a parent for node i among the rightmost path of
  // the tree over 0..i-1 — exactly the trees accepted by MergeTree's
  // preorder validation.
  const std::function<void(Index)> rec = [&](Index i) {
    if (i == n) {
      fn(MergeTree(parents));
      return;
    }
    const std::vector<Index> saved = rightmost;
    for (std::size_t cut = saved.size(); cut >= 1; --cut) {
      // Parent = saved[cut-1]; everything above it leaves the rightmost path.
      parents[index_of(i)] = saved[cut - 1];
      rightmost.assign(saved.begin(), saved.begin() + static_cast<std::ptrdiff_t>(cut));
      rightmost.push_back(i);
      rec(i + 1);
    }
    rightmost = saved;
  };
  rec(1);
}

MergeTree random_merge_tree(Index n, std::uint64_t seed) {
  if (n < 1) throw std::invalid_argument("random_merge_tree: n >= 1 required");
  std::mt19937_64 rng(seed);
  std::vector<Index> parents(index_of(n), -1);
  std::vector<Index> rightmost{0};
  for (Index i = 1; i < n; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, rightmost.size() - 1);
    const std::size_t cut = pick(rng);
    parents[index_of(i)] = rightmost[cut];
    rightmost.resize(cut + 1);
    rightmost.push_back(i);
  }
  return MergeTree(std::move(parents));
}

std::int64_t count_merge_trees(Index n) {
  if (n < 1 || n > 34) {
    throw std::invalid_argument("count_merge_trees: n outside [1, 34]");
  }
  // Catalan(n-1) by the product formula, exact in 64 bits for n <= 34.
  const Index m = n - 1;
  std::int64_t c = 1;
  for (Index i = 0; i < m; ++i) {
    c = c * 2 * (2 * i + 1) / (i + 2);
  }
  return c;
}

}  // namespace smerge
