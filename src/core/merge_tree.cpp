#include "core/merge_tree.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace smerge {

namespace {

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

}  // namespace

MergeTree::MergeTree(std::vector<Index> parents) : parents_(std::move(parents)) {
  const Index n = size();
  if (n == 0) {
    throw std::invalid_argument("MergeTree: at least one arrival required");
  }
  if (parents_[0] != -1) {
    throw std::invalid_argument("MergeTree: parents[0] must be -1 (root)");
  }
  children_.resize(index_of(n));
  // Validate "merge to an earlier stream" and the preorder property. The
  // preorder property holds iff each new node's parent lies on the
  // rightmost path of the tree built from the previous labels, which the
  // stack tracks exactly.
  std::vector<Index> rightmost{0};
  for (Index i = 1; i < n; ++i) {
    const Index p = parents_[index_of(i)];
    if (p < 0 || p >= i) {
      throw std::invalid_argument("MergeTree: parent label must precede node label");
    }
    while (!rightmost.empty() && rightmost.back() != p) rightmost.pop_back();
    if (rightmost.empty()) {
      throw std::invalid_argument("MergeTree: preorder traversal property violated");
    }
    rightmost.push_back(i);
    children_[index_of(p)].push_back(i);  // ascending i => sorted children
  }

  // z(x) by reverse scan: all descendants of x have larger labels, so by
  // the time x's entry is folded into its parent, z(x) is final.
  last_descendant_.resize(index_of(n));
  for (Index i = 0; i < n; ++i) last_descendant_[index_of(i)] = i;
  for (Index i = n - 1; i >= 1; --i) {
    const Index p = parents_[index_of(i)];
    auto& zp = last_descendant_[index_of(p)];
    zp = std::max(zp, last_descendant_[index_of(i)]);
  }
}

MergeTree MergeTree::single() {
  return MergeTree(std::vector<Index>{-1});
}

MergeTree MergeTree::chain(Index n) {
  if (n < 1) throw std::invalid_argument("MergeTree::chain: n >= 1 required");
  std::vector<Index> parents(index_of(n));
  parents[0] = -1;
  for (Index i = 1; i < n; ++i) parents[index_of(i)] = i - 1;
  return MergeTree(std::move(parents));
}

MergeTree MergeTree::star(Index n) {
  if (n < 1) throw std::invalid_argument("MergeTree::star: n >= 1 required");
  std::vector<Index> parents(index_of(n), 0);
  parents[0] = -1;
  return MergeTree(std::move(parents));
}

Index MergeTree::parent(Index x) const {
  if (x < 0 || x >= size()) throw std::out_of_range("MergeTree::parent");
  return parents_[index_of(x)];
}

const std::vector<Index>& MergeTree::children(Index x) const {
  if (x < 0 || x >= size()) throw std::out_of_range("MergeTree::children");
  return children_[index_of(x)];
}

Index MergeTree::last_descendant(Index x) const {
  if (x < 0 || x >= size()) throw std::out_of_range("MergeTree::last_descendant");
  return last_descendant_[index_of(x)];
}

Index MergeTree::depth(Index x) const {
  Index d = 0;
  for (Index v = x; parent(v) != -1; v = parent(v)) ++d;
  return d;
}

std::vector<Index> MergeTree::path_from_root(Index x) const {
  std::vector<Index> path;
  for (Index v = x; v != -1; v = parent(v)) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

Cost MergeTree::length(Index x, Model model) const {
  const Index p = parent(x);
  if (p == -1) {
    throw std::invalid_argument("MergeTree::length: the root stream has length L");
  }
  const Index z = last_descendant(x);
  return model == Model::kReceiveTwo ? (2 * z - x - p)  // Lemma 1
                                     : (z - p);         // Lemma 17
}

Cost MergeTree::merge_cost(Model model) const {
  Cost total = 0;
  for (Index x = 1; x < size(); ++x) total += length(x, model);
  return total;
}

MergeTree MergeTree::prefix(Index count) const {
  if (count < 1 || count > size()) {
    throw std::invalid_argument("MergeTree::prefix: count outside [1, size()]");
  }
  std::vector<Index> parents(parents_.begin(), parents_.begin() + static_cast<std::ptrdiff_t>(count));
  return MergeTree(std::move(parents));
}

bool MergeTree::feasible(Index media_length, Model model) const {
  if (!fits(media_length)) return false;
  for (Index x = 1; x < size(); ++x) {
    if (length(x, model) > media_length) return false;
  }
  return true;
}

MergeTree MergeTree::subtree(Index x) const {
  if (x < 0 || x >= size()) throw std::out_of_range("MergeTree::subtree");
  const Index z = last_descendant(x);
  std::vector<Index> parents(index_of(z - x + 1));
  parents[0] = -1;
  for (Index i = x + 1; i <= z; ++i) {
    parents[index_of(i - x)] = parents_[index_of(i)] - x;
  }
  return MergeTree(std::move(parents));
}

plan::MergePlan MergeTree::to_plan(Index media_length, Model model,
                                   Index offset) const {
  plan::PlanBuilder builder(static_cast<double>(media_length), model);
  for (Index x = 0; x < size(); ++x) {
    const Index p = parents_[index_of(x)];
    builder.add_stream(static_cast<double>(offset + x),
                       p == -1 ? Index{-1} : p);
  }
  return builder.build();
}

std::string MergeTree::to_string() const {
  std::ostringstream os;
  // Iterative preorder rendering with explicit close-parens.
  struct Frame {
    Index node;
    std::size_t next_child;
  };
  std::vector<Frame> stack{{0, 0}};
  os << 0;
  while (!stack.empty()) {
    Frame& top = stack.back();
    const auto& kids = children_[index_of(top.node)];
    if (top.next_child == 0 && !kids.empty()) os << '(';
    if (top.next_child < kids.size()) {
      if (top.next_child > 0) os << ' ';
      const Index child = kids[top.next_child++];
      os << child;
      stack.push_back(Frame{child, 0});
    } else {
      if (!kids.empty()) os << ')';
      stack.pop_back();
    }
  }
  return os.str();
}

}  // namespace smerge
