// Construction of optimal merge trees.
//
// Theorem 7: with the table r(i) = max I(i) precomputed in linear time,
// an optimal receive-two merge tree for n arrivals is built recursively —
// split [0, n-1] at h = r(n), build optimal trees for the first h and the
// remaining n-h arrivals, and attach the second root as the last child of
// the first root. For the receive-all model the optimal split is the
// midpoint (Section 3.4).
//
// For n equal to a Fibonacci number the optimal receive-two tree is unique
// (the "Fibonacci merge tree"); its right subtree is the tree for F_{k-2}
// and the rest is the tree for F_{k-1} (Fig. 7).
//
// `enumerate_merge_trees` walks *every* merge tree on n arrivals
// (Catalan(n-1) of them) and is the exhaustive optimality anchor used by
// the property tests.
#ifndef SMERGE_CORE_TREE_BUILDER_H
#define SMERGE_CORE_TREE_BUILDER_H

#include <functional>

#include "core/merge_cost.h"
#include "core/merge_tree.h"

namespace smerge {

/// Optimal merge tree for n arrivals under `model`. O(n) after the O(n)
/// r-table construction. Requires 1 <= n <= kMaxHorizon (and a table at
/// least that long in the table-reusing overload).
[[nodiscard]] MergeTree optimal_merge_tree(Index n, Model model = Model::kReceiveTwo);

/// As above, reusing a precomputed `last_merge_table(>= n)`; receive-two
/// only (the receive-all split needs no table).
[[nodiscard]] MergeTree optimal_merge_tree_with_table(Index n,
                                                      const std::vector<Index>& r_table);

/// The unique optimal tree for n = F_k arrivals (Fig. 7). Requires
/// 2 <= k <= fib::kMaxIndex.
[[nodiscard]] MergeTree fibonacci_merge_tree(int k);

/// The canonical-IR form of `optimal_merge_tree(n, model)` standing
/// alone with a media length of L slots: the off-line uniform-arrival
/// producer feeding `plan::verify` and the schedule layer.
[[nodiscard]] plan::MergePlan optimal_merge_plan(Index media_length, Index n,
                                                 Model model = Model::kReceiveTwo);

/// Invokes `fn` on every merge tree over n arrivals, in lexicographic
/// parent-vector order. There are Catalan(n-1) of them; keep n <= ~14.
void enumerate_merge_trees(Index n, const std::function<void(const MergeTree&)>& fn);

/// Catalan(n-1): the number of merge trees on n arrivals. Requires
/// 1 <= n <= 34 (larger overflows 64 bits).
[[nodiscard]] std::int64_t count_merge_trees(Index n);

/// A uniformly-random-ish merge tree on n arrivals: each node attaches to
/// a uniformly chosen member of the current rightmost path (the natural
/// preorder-preserving growth process). Deterministic for a fixed seed.
/// Used by fuzz tests to exercise non-optimal tree shapes.
[[nodiscard]] MergeTree random_merge_tree(Index n, std::uint64_t seed);

}  // namespace smerge

#endif  // SMERGE_CORE_TREE_BUILDER_H
