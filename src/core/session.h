// First-class viewing sessions over a chunked media timeline.
//
// The paper's client model is "arrive, wait, watch to the end"; a real
// session also pauses, seeks and abandons mid-stream. These types are
// the one vocabulary every layer shares for that lifecycle:
// `sim/workload` generates per-object `SessionTrace`s on split RNG
// substreams, `server/server_core` resolves their media-position events
// to wall-clock times once the admission (and therefore the playback
// start) is known, and `core/plan_repair` turns departures and seeks
// into in-place `MergePlan` edits.
//
// Events carry *media positions*, not wall-clock times: a trace is
// policy-independent (the same session abandons 40% of the way through
// the media whether it waited one slot or ten), so enabling churn never
// perturbs the arrival process and a trace is reusable across policies.
// The wall-clock instant of an event is
//   playback_start + position + (pause time spent before it),
// resolved by whoever knows the playback start.
#ifndef SMERGE_CORE_SESSION_H
#define SMERGE_CORE_SESSION_H

#include <vector>

#include "fib/fibonacci.h"

namespace smerge {

/// What a session does mid-stream. Arrival and natural completion are
/// implicit (the trace's `arrival` field and the media end).
enum class SessionEventType {
  kPause,    ///< playback halts for `value` time units, then resumes
  kSeek,     ///< playhead jumps to media position `value`
  kAbandon,  ///< the client departs; no further events
};

/// Human-readable event-type name.
[[nodiscard]] const char* to_string(SessionEventType type) noexcept;

/// One mid-stream event at media position `position` (in (0, L)).
struct SessionEvent {
  SessionEventType type = SessionEventType::kAbandon;
  double position = 0.0;  ///< playhead position when the event fires
  double value = 0.0;     ///< pause: duration; seek: target position
};

/// One client session: an arrival plus its position-ordered mid-stream
/// events (empty = the classic watch-to-the-end client).
struct SessionTrace {
  double arrival = 0.0;
  std::vector<SessionEvent> events;
};

}  // namespace smerge

#endif  // SMERGE_CORE_SESSION_H
