// Binary codecs for the plan-layer state a server checkpoint carries:
// MergePlan (rebuilt through PlanBuilder, so a loaded plan's derived
// merge times are bit-identical to the saved one's), StreamEdit repair
// logs, RepairStats tallies, and SessionTrace event lists. These are
// payload codecs — they append to / read from an open SnapshotWriter /
// SnapshotReader and leave framing (schema, checksum) to the caller.
#ifndef SMERGE_CORE_PLAN_IO_H
#define SMERGE_CORE_PLAN_IO_H

#include <vector>

#include "core/plan.h"
#include "core/plan_repair.h"
#include "core/session.h"
#include "util/snapshot.h"

namespace smerge::plan {

/// Appends `plan` (media length, model, chunking, and the per-stream
/// start/delay/length/parent arrays) to `w`. Derived fields (merge
/// times, CSR children) are not stored: `load_plan` re-derives them
/// through PlanBuilder, which produces bit-identical values (the same
/// property SessionPlan::snapshot relies on).
void save_plan(util::SnapshotWriter& w, const MergePlan& plan);

/// Reads a plan written by `save_plan`. Throws util::SnapshotError on
/// malformed input (bad model tag, negative count, truncation) and
/// std::invalid_argument when the stored arrays violate PlanBuilder's
/// ordering invariants.
[[nodiscard]] MergePlan load_plan(util::SnapshotReader& r);

/// Appends the edit log (count + per-edit fields).
void save_edits(util::SnapshotWriter& w, std::span<const StreamEdit> edits);

/// Reads an edit log written by `save_edits`.
[[nodiscard]] std::vector<StreamEdit> load_edits(util::SnapshotReader& r);

/// Appends repair tallies.
void save_repair_stats(util::SnapshotWriter& w, const RepairStats& stats);

/// Reads repair tallies written by `save_repair_stats`.
[[nodiscard]] RepairStats load_repair_stats(util::SnapshotReader& r);

/// Appends one session trace (arrival + position-ordered events).
void save_session_trace(util::SnapshotWriter& w, const SessionTrace& trace);

/// Reads a session trace written by `save_session_trace`. Throws
/// util::SnapshotError on a bad event-type tag.
[[nodiscard]] SessionTrace load_session_trace(util::SnapshotReader& r);

/// Appends a list of session traces (count + traces).
void save_session_traces(util::SnapshotWriter& w,
                         std::span<const SessionTrace> traces);

/// Reads a list written by `save_session_traces`.
[[nodiscard]] std::vector<SessionTrace> load_session_traces(
    util::SnapshotReader& r);

}  // namespace smerge::plan

#endif  // SMERGE_CORE_PLAN_IO_H
