#include "core/full_cost.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/tree_builder.h"

namespace smerge {

namespace {

void check_instance(Index L, Index n, const char* fn) {
  if (L < 1 || L > kMaxHorizon) {
    throw std::invalid_argument(std::string(fn) + ": media length outside [1, 10^15]");
  }
  if (n < 1 || n > kMaxHorizon) {
    throw std::invalid_argument(std::string(fn) + ": n outside [1, 10^15]");
  }
}

Index ceil_div(Index a, Index b) { return (a + b - 1) / b; }

// Lemma 9 / Eq. 22 evaluation without feasibility checks (callers check).
Cost lemma9(Index L, Index n, Index s, Model model) {
  const Index p = n / s;
  const Index r = n - p * s;
  return s * L + r * merge_cost(p + 1, model) + (s - r) * merge_cost(p, model);
}

StreamPlan make_plan(Index L, Index n, Index s, Model model) {
  const Index p = n / s;
  const Index r = n - p * s;
  return StreamPlan{s, lemma9(L, n, s, model), r, s - r, p};
}

// Generic "best s among candidates, else scan" helper used by the bounded
// and receive-all variants. `s_min` is the feasibility floor.
StreamPlan best_of_scan(Index L, Index n, Index s_min, Model model) {
  Cost best = std::numeric_limits<Cost>::max();
  Index best_s = s_min;
  for (Index s = s_min; s <= n; ++s) {
    const Cost c = lemma9(L, n, s, model);
    if (c < best) {
      best = c;
      best_s = s;
    }
  }
  return make_plan(L, n, best_s, model);
}

}  // namespace

Index min_streams(Index media_length, Index n) {
  check_instance(media_length, n, "min_streams");
  return ceil_div(n, media_length);
}

Cost full_cost_given_streams(Index media_length, Index n, Index s, Model model) {
  check_instance(media_length, n, "full_cost_given_streams");
  if (s < min_streams(media_length, n) || s > n) {
    throw std::invalid_argument("full_cost_given_streams: s outside [ceil(n/L), n]");
  }
  return lemma9(media_length, n, s, model);
}

int theorem12_index(Index media_length) {
  if (media_length < 1) {
    throw std::invalid_argument("theorem12_index: media length must be >= 1");
  }
  // F_{h+1} <= L+1 < F_{h+2}  <=>  h+1 = bracket_index(L+1).
  return fib::bracket_index(media_length + 1) - 1;
}

StreamPlan optimal_stream_count(Index media_length, Index n) {
  check_instance(media_length, n, "optimal_stream_count");
  const Index s0 = min_streams(media_length, n);
  const int h = theorem12_index(media_length);
  const Index fh = fib::fibonacci(h);
  const Index s1 = n / fh;

  // Theorem 12: the minimum is at s1 or s1+1 (clamped to [s0, n]); we also
  // keep s0 in the candidate set so the clamp logic stays self-evidently
  // safe at the boundaries.
  Cost best = std::numeric_limits<Cost>::max();
  Index best_s = -1;
  for (const Index cand : {s1, s1 + 1, s0}) {
    const Index s = std::clamp(cand, s0, n);
    const Cost c = lemma9(media_length, n, s, Model::kReceiveTwo);
    if (c < best || (c == best && s < best_s)) {
      best = c;
      best_s = s;
    }
  }
  return make_plan(media_length, n, best_s, Model::kReceiveTwo);
}

StreamPlan optimal_stream_count_receive_all(Index media_length, Index n) {
  check_instance(media_length, n, "optimal_stream_count_receive_all");
  return best_of_scan(media_length, n, min_streams(media_length, n), Model::kReceiveAll);
}

Cost full_cost(Index media_length, Index n, Model model) {
  return model == Model::kReceiveTwo
             ? optimal_stream_count(media_length, n).cost
             : optimal_stream_count_receive_all(media_length, n).cost;
}

namespace {

// Shared forest assembly for Theorem 10 / Theorem 16 / receive-all: r
// trees of p+1 arrivals followed by s-r trees of p arrivals.
MergeForest build_forest(Index L, const StreamPlan& plan, Model model) {
  std::vector<MergeTree> trees;
  trees.reserve(static_cast<std::size_t>(plan.streams));
  if (plan.trees_of_size_p1 > 0) {
    const MergeTree big = optimal_merge_tree(plan.p + 1, model);
    for (Index i = 0; i < plan.trees_of_size_p1; ++i) trees.push_back(big);
  }
  if (plan.trees_of_size_p > 0) {
    const MergeTree small = optimal_merge_tree(plan.p, model);
    for (Index i = 0; i < plan.trees_of_size_p; ++i) trees.push_back(small);
  }
  MergeForest forest(L, std::move(trees));
  // The optimal constructions always yield physically transmittable
  // streams (every Lemma-1 / Lemma-17 length at most L); if this ever
  // failed the theory (not the caller) would be wrong.
  if (!forest.feasible(model)) {
    throw std::logic_error("build_forest: optimal plan produced an infeasible L-tree");
  }
  return forest;
}

}  // namespace

MergeForest optimal_merge_forest(Index media_length, Index n, Model model) {
  const StreamPlan plan = model == Model::kReceiveTwo
                              ? optimal_stream_count(media_length, n)
                              : optimal_stream_count_receive_all(media_length, n);
  return build_forest(media_length, plan, model);
}

StreamPlan optimal_stream_count_bounded(Index media_length, Index n, Index buffer_slots) {
  check_instance(media_length, n, "optimal_stream_count_bounded");
  if (buffer_slots < 1 || buffer_slots > media_length) {
    throw std::invalid_argument(
        "optimal_stream_count_bounded: buffer outside [1, L] slots");
  }
  const StreamPlan unconstrained = optimal_stream_count(media_length, n);
  // Lemma 15: no client ever needs more than floor(L/2) buffer slots, so
  // the constraint is inert for 2B >= L.
  if (2 * buffer_slots >= media_length) return unconstrained;
  // Otherwise trees may hold at most B arrivals (Lemma 15 forbids
  // x - r > B), hence s >= ceil(n/B). f(s) is unimodal (Lemma 11), so the
  // constrained optimum is the unconstrained one clamped up to the floor.
  const Index s_floor = std::max(min_streams(media_length, n), ceil_div(n, buffer_slots));
  if (unconstrained.streams >= s_floor) return unconstrained;
  return make_plan(media_length, n, s_floor, Model::kReceiveTwo);
}

Cost full_cost_bounded(Index media_length, Index n, Index buffer_slots) {
  return optimal_stream_count_bounded(media_length, n, buffer_slots).cost;
}

MergeForest optimal_merge_forest_bounded(Index media_length, Index n, Index buffer_slots) {
  const StreamPlan plan = optimal_stream_count_bounded(media_length, n, buffer_slots);
  return build_forest(media_length, plan, Model::kReceiveTwo);
}

Cost full_cost_scan(Index media_length, Index n, Model model) {
  check_instance(media_length, n, "full_cost_scan");
  return best_of_scan(media_length, n, min_streams(media_length, n), model).cost;
}

Cost full_cost_partition_dp(Index media_length, Index n, Model model) {
  check_instance(media_length, n, "full_cost_partition_dp");
  const Index max_tree = std::min(media_length, n);
  const std::vector<Cost> m = merge_cost_table_dp(max_tree, model);
  std::vector<Cost> g(static_cast<std::size_t>(n) + 1,
                      std::numeric_limits<Cost>::max());
  g[0] = 0;
  for (Index i = 1; i <= n; ++i) {
    for (Index t = 1; t <= std::min(max_tree, i); ++t) {
      const Cost prev = g[static_cast<std::size_t>(i - t)];
      if (prev == std::numeric_limits<Cost>::max()) continue;
      const Cost c = prev + media_length + m[static_cast<std::size_t>(t)];
      g[static_cast<std::size_t>(i)] = std::min(g[static_cast<std::size_t>(i)], c);
    }
  }
  return g[static_cast<std::size_t>(n)];
}

}  // namespace smerge
