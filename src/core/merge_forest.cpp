#include "core/merge_forest.h"

#include <algorithm>
#include <stdexcept>

namespace smerge {

MergeForest::MergeForest(Index media_length, std::vector<MergeTree> trees)
    : media_length_(media_length), trees_(std::move(trees)) {
  if (media_length_ < 1) {
    throw std::invalid_argument("MergeForest: media length must be >= 1 slot");
  }
  if (trees_.empty()) {
    throw std::invalid_argument("MergeForest: at least one tree required");
  }
  offsets_.reserve(trees_.size());
  for (const MergeTree& t : trees_) {
    if (!t.fits(media_length_)) {
      throw std::invalid_argument(
          "MergeForest: tree span exceeds media length (root cannot serve last arrival)");
    }
    offsets_.push_back(total_);
    total_ += t.size();
  }
}

const MergeTree& MergeForest::tree(Index t) const {
  if (t < 0 || t >= num_trees()) throw std::out_of_range("MergeForest::tree");
  return trees_[static_cast<std::size_t>(t)];
}

Index MergeForest::tree_offset(Index t) const {
  if (t < 0 || t >= num_trees()) throw std::out_of_range("MergeForest::tree_offset");
  return offsets_[static_cast<std::size_t>(t)];
}

Index MergeForest::tree_of(Index arrival) const {
  if (arrival < 0 || arrival >= total_) throw std::out_of_range("MergeForest::tree_of");
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), arrival);
  return static_cast<Index>(it - offsets_.begin()) - 1;
}

Cost MergeForest::stream_length(Index arrival, Model model) const {
  const Index t = tree_of(arrival);
  const Index local = arrival - offsets_[static_cast<std::size_t>(t)];
  if (local == 0) return media_length_;  // root: a full stream
  return trees_[static_cast<std::size_t>(t)].length(local, model);
}

Cost MergeForest::full_cost(Model model) const {
  Cost total = num_trees() * media_length_;
  for (const MergeTree& t : trees_) total += t.merge_cost(model);
  return total;
}

double MergeForest::average_bandwidth(Model model) const {
  return static_cast<double>(full_cost(model)) / static_cast<double>(total_);
}

bool MergeForest::feasible(Model model) const {
  for (const MergeTree& t : trees_) {
    if (!t.feasible(media_length_, model)) return false;
  }
  return true;
}

plan::MergePlan MergeForest::to_plan(Model model) const {
  plan::PlanBuilder builder(static_cast<double>(media_length_), model);
  Index offset = 0;
  for (const MergeTree& t : trees_) {
    for (Index x = 0; x < t.size(); ++x) {
      const Index p = t.parents()[static_cast<std::size_t>(x)];
      builder.add_stream(static_cast<double>(offset + x),
                         p == -1 ? Index{-1} : offset + p);
    }
    offset += t.size();
  }
  return builder.build();
}

}  // namespace smerge
