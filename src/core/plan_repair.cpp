#include "core/plan_repair.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace smerge::plan {

namespace {

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

constexpr double kNoArrival = -std::numeric_limits<double>::infinity();

}  // namespace

SessionPlan::SessionPlan(const MergePlan& base)
    : media_length_(base.media_length()),
      model_(base.model()),
      chunking_(base.chunking()),
      start_(base.start().begin(), base.start().end()),
      delay_(base.delay().begin(), base.delay().end()),
      length_(base.length().begin(), base.length().end()),
      merge_time_(base.merge_time().begin(), base.merge_time().end()),
      parent_(base.parent().begin(), base.parent().end()),
      base_length_(length_),
      base_parent_(parent_) {
  const std::size_t n = start_.size();
  children_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Index p = parent_[i];
    if (p != -1) children_[index_of(p)].push_back(static_cast<Index>(i));
  }
  active_.assign(n, 1);
  active_count_.assign(n, 1);
  z_active_.assign(start_.begin(), start_.end());
  z_all_.assign(start_.begin(), start_.end());
  for (std::size_t i = n; i-- > 1;) {
    const Index p = parent_[i];
    if (p == -1) continue;
    const std::size_t up = index_of(p);
    active_count_[up] += active_count_[i];
    z_active_[up] = std::max(z_active_[up], z_active_[i]);
    z_all_[up] = std::max(z_all_[up], z_all_[i]);
  }
  for (const double length : length_) cost_ += length;
}

std::size_t SessionPlan::check(Index x) const {
  if (x < 0 || x >= size()) {
    throw std::out_of_range("SessionPlan: stream id");
  }
  return index_of(x);
}

void SessionPlan::check_time(double at) const {
  if (!std::isfinite(at) || at < 0.0) {
    throw std::invalid_argument("SessionPlan: event time must be >= 0");
  }
}

void SessionPlan::refresh_node(std::size_t v) {
  double z_active = active_[v] != 0 ? start_[v] : kNoArrival;
  double z_all = start_[v];
  for (const Index c : children_[v]) {
    const std::size_t uc = index_of(c);
    if (active_count_[uc] > 0) z_active = std::max(z_active, z_active_[uc]);
    z_all = std::max(z_all, z_all_[uc]);
  }
  z_active_[v] = z_active;
  z_all_[v] = z_all;
}

void SessionPlan::set_length(std::size_t v, double target, bool reroot) {
  const double old = length_[v];
  if (!reroot && target == old) return;
  edits_.push_back(StreamEdit{static_cast<Index>(v), start_[v] + old,
                              start_[v] + target, reroot});
  if (target < old) {
    ++stats_.truncations;
    stats_.retracted += old - target;
  } else if (target > old) {
    ++stats_.extensions;
    stats_.extended += target - old;
  }
  cost_ += target - old;
  length_[v] = target;
}

void SessionPlan::repair_node(std::size_t v, double at, bool reroot) {
  if (active_count_[v] == 0) {
    // Nobody in the subtree is watching: stop transmitting now. The
    // already-sent prefix is history and stays in the plan.
    set_length(v, std::clamp(at - start_[v], 0.0, length_[v]), reroot);
    if (parent_[v] == -1) merge_time_[v] = start_[v] + length_[v];
    return;
  }
  if (parent_[v] == -1) return;  // a watched root keeps the full media
  // A watched non-root shrinks to the Lemma-1 / Lemma-17 length its
  // *remaining* viewers need (z' = last active subtree arrival), but
  // never below what is already transmitted and never longer than it
  // already is (policies may have emitted extra length on purpose).
  const double sp = start_[index_of(parent_[v])];
  const double need = model_ == Model::kReceiveTwo
                          ? 2.0 * z_active_[v] - start_[v] - sp
                          : z_active_[v] - sp;
  const double elapsed = std::min(length_[v], std::max(0.0, at - start_[v]));
  set_length(v, std::min(length_[v], std::max(need, elapsed)), reroot);
}

void SessionPlan::abandon(Index x, double at) {
  const std::size_t ux = check(x);
  check_time(at);
  if (active_[ux] == 0) {
    throw std::invalid_argument("SessionPlan::abandon: client already departed");
  }
  log_.push_back(LoggedEvent{false, x, at});
  ++stats_.abandons;
  active_[ux] = 0;
  for (Index v = x; v != -1; v = parent_[index_of(v)]) {
    const std::size_t uv = index_of(v);
    --active_count_[uv];
    refresh_node(uv);
    repair_node(uv, at, false);
  }
}

void SessionPlan::seek(Index x, double at) {
  const std::size_t ux = check(x);
  check_time(at);
  if (active_[ux] == 0) {
    throw std::invalid_argument("SessionPlan::seek: client already departed");
  }
  log_.push_back(LoggedEvent{true, x, at});
  ++stats_.seeks;
  const Index p = parent_[ux];
  if (p == -1) return;  // already a root: the full media is on the way
  ++stats_.reroots;

  // Detach: x's subtree re-roots in place and, as a root, must carry
  // the media to its end for the viewers that rode along.
  auto& siblings = children_[index_of(p)];
  siblings.erase(std::find(siblings.begin(), siblings.end(), x));
  parent_[ux] = -1;
  set_length(ux, media_length_, /*reroot=*/true);
  merge_time_[ux] = start_[ux] + length_[ux];

  // The old ancestors lost x's whole subtree: structural z and the
  // active viewer counts both drop, merge times follow the new
  // geometry, lengths retract exactly as in a departure.
  const Index moved = active_count_[ux];
  for (Index v = p; v != -1; v = parent_[index_of(v)]) {
    const std::size_t uv = index_of(v);
    active_count_[uv] -= moved;
    refresh_node(uv);
    const Index vp = parent_[uv];
    if (vp != -1) {
      const double sp = start_[index_of(vp)];
      merge_time_[uv] = model_ == Model::kReceiveTwo
                            ? 2.0 * z_all_[uv] - sp
                            : start_[uv] + (z_all_[uv] - sp);
    }
    repair_node(uv, at, false);
    if (vp == -1 && active_count_[uv] > 0) {
      merge_time_[uv] = start_[uv] + length_[uv];
    }
  }
}

bool SessionPlan::active(Index x) const { return active_[check(x)] != 0; }

MergePlan SessionPlan::snapshot() const {
  PlanBuilder builder(media_length_, model_);
  if (chunking_.enabled()) builder.set_chunking(chunking_);
  for (std::size_t i = 0; i < start_.size(); ++i) {
    (void)builder.add_stream(start_[i], parent_[i], length_[i]);
    if (delay_[i] > 0.0) builder.record_wait(static_cast<Index>(i), delay_[i]);
  }
  return builder.build();
}

std::vector<double> SessionPlan::reference_lengths() const {
  // Replay from scratch: every logged event pays a full O(n) recompute
  // of the subtree summaries before the path repair — the baseline the
  // incremental path is benchmarked against. The repair expressions are
  // copies of repair_node's, so the result is bit-equal to lengths().
  const std::size_t n = start_.size();
  std::vector<double> length = base_length_;
  std::vector<Index> original_parent = base_parent_;

  std::vector<Index> count(n, 0);
  std::vector<double> z_active(n, 0.0);
  std::vector<std::uint8_t> act(n, 1);

  auto recompute = [&](const std::vector<Index>& par) {
    for (std::size_t i = 0; i < n; ++i) {
      count[i] = act[i] != 0 ? 1 : 0;
      z_active[i] = act[i] != 0 ? start_[i] : kNoArrival;
    }
    for (std::size_t i = n; i-- > 1;) {
      const Index p = par[i];
      if (p == -1) continue;
      const std::size_t up = index_of(p);
      count[up] += count[i];
      z_active[up] = std::max(z_active[up], z_active[i]);
    }
  };

  auto repair_path = [&](std::vector<double>& len, const std::vector<Index>& par,
                         Index from, double at) {
    for (Index v = from; v != -1; v = par[index_of(v)]) {
      const std::size_t uv = index_of(v);
      if (count[uv] == 0) {
        len[uv] = std::clamp(at - start_[uv], 0.0, len[uv]);
        continue;
      }
      if (par[uv] == -1) continue;
      const double sp = start_[index_of(par[uv])];
      const double need = model_ == Model::kReceiveTwo
                              ? 2.0 * z_active[uv] - start_[uv] - sp
                              : z_active[uv] - sp;
      const double elapsed = std::min(len[uv], std::max(0.0, at - start_[uv]));
      len[uv] = std::min(len[uv], std::max(need, elapsed));
    }
  };

  for (const LoggedEvent& event : log_) {
    const std::size_t ux = index_of(event.stream);
    if (event.is_seek) {
      const Index p = original_parent[ux];
      if (p == -1) continue;
      original_parent[ux] = -1;
      length[ux] = media_length_;
      recompute(original_parent);
      repair_path(length, original_parent, p, event.at);
    } else {
      act[ux] = 0;
      recompute(original_parent);
      repair_path(length, original_parent, event.stream, event.at);
    }
  }
  return length;
}

}  // namespace smerge::plan
