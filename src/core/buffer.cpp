#include "core/buffer.h"

#include <algorithm>
#include <stdexcept>

namespace smerge {

Index buffer_requirement(Index offset_from_root, Index media_length) {
  if (offset_from_root < 0 || offset_from_root > media_length - 1) {
    throw std::invalid_argument("buffer_requirement: offset outside [0, L-1]");
  }
  return std::min(offset_from_root, media_length - offset_from_root);
}

Index max_buffer_requirement(const MergeTree& tree, Index media_length) {
  if (!tree.fits(media_length)) {
    throw std::invalid_argument("max_buffer_requirement: tree does not fit media length");
  }
  Index worst = 0;
  for (Index x = 0; x < tree.size(); ++x) {
    worst = std::max(worst, buffer_requirement(x, media_length));
  }
  return worst;
}

Index max_buffer_requirement(const MergeForest& forest) {
  Index worst = 0;
  for (Index t = 0; t < forest.num_trees(); ++t) {
    worst = std::max(worst, max_buffer_requirement(forest.tree(t), forest.media_length()));
  }
  return worst;
}

}  // namespace smerge
