// Client reception models studied by the paper.
#ifndef SMERGE_CORE_MODEL_H
#define SMERGE_CORE_MODEL_H

namespace smerge {

/// How many streams a client may receive simultaneously.
///
/// * `kReceiveTwo`  — the paper's main model: a client listens to at most
///   two streams at once (its own and the one it is merging into).
///   Stream lengths follow Lemma 1: l(x) = 2 z(x) - x - p(x).
/// * `kReceiveAll`  — Section 3.4: a client may listen to every stream on
///   its root path simultaneously. Lengths follow Lemma 17:
///   w(x) = z(x) - p(x).
enum class Model {
  kReceiveTwo,
  kReceiveAll,
};

/// Human-readable model name ("receive-two" / "receive-all").
[[nodiscard]] constexpr const char* to_string(Model m) noexcept {
  return m == Model::kReceiveTwo ? "receive-two" : "receive-all";
}

}  // namespace smerge

#endif  // SMERGE_CORE_MODEL_H
