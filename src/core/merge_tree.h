// Merge trees (Section 2 of the paper).
//
// A merge tree for the arrivals 0, 1, ..., n-1 is an ordered labeled tree
// whose root is 0, in which every non-root node merges to an earlier
// arrival (parent label < node label) and which satisfies the *preorder
// traversal property*: a preorder walk visits the labels in increasing
// order. Every optimal tree has this property ([6], cited in Section 2),
// so the class enforces it as an invariant — the subtree of any node x is
// exactly the label interval [x, z(x)].
//
// Stream lengths are dictated by the reception model:
//   receive-two (Lemma 1):  l(x) = 2 z(x) - x - p(x)
//   receive-all (Lemma 17): w(x) = z(x) - p(x)
// where p(x) is the parent label and z(x) the last arrival in x's subtree.
// The merge cost of the tree is the sum of lengths over non-root nodes.
#ifndef SMERGE_CORE_MERGE_TREE_H
#define SMERGE_CORE_MERGE_TREE_H

#include <string>
#include <vector>

#include "core/model.h"
#include "core/plan.h"
#include "fib/fibonacci.h"

namespace smerge {

/// An immutable merge tree over the local arrivals 0..size()-1.
///
/// Labels inside the tree are always 0-based; when the tree is placed in a
/// merge forest at slot offset t0, global arrival times are t0 + label.
/// All length/cost formulas depend only on label differences, so the
/// offset never enters this class.
class MergeTree {
 public:
  /// Builds a tree from a parent vector: parents[0] must be -1 (root) and
  /// for every i > 0, 0 <= parents[i] < i. Validates the preorder
  /// traversal property; throws std::invalid_argument on any violation.
  explicit MergeTree(std::vector<Index> parents);

  /// The one-arrival tree (a single root).
  [[nodiscard]] static MergeTree single();
  /// The path 0 -> 1 -> ... -> n-1 (each arrival merges to its
  /// predecessor). Requires n >= 1.
  [[nodiscard]] static MergeTree chain(Index n);
  /// The star: every arrival 1..n-1 merges directly to the root.
  [[nodiscard]] static MergeTree star(Index n);

  /// Number of arrivals (nodes).
  [[nodiscard]] Index size() const noexcept { return static_cast<Index>(parents_.size()); }
  /// Parent label of x; -1 for the root. Throws std::out_of_range.
  [[nodiscard]] Index parent(Index x) const;
  /// Children of x in increasing label order.
  [[nodiscard]] const std::vector<Index>& children(Index x) const;
  /// z(x): the last (largest) arrival in the subtree rooted at x. By the
  /// preorder property the subtree of x is exactly [x, z(x)].
  [[nodiscard]] Index last_descendant(Index x) const;
  /// Number of edges from the root to x.
  [[nodiscard]] Index depth(Index x) const;
  /// The receiving-program path x0=0 < x1 < ... < xk = x (Section 2).
  [[nodiscard]] std::vector<Index> path_from_root(Index x) const;

  /// Stream length of non-root x under `model` (Lemma 1 / Lemma 17).
  /// Throws std::invalid_argument for the root (its length is the full
  /// media length L, which the tree does not know).
  [[nodiscard]] Cost length(Index x, Model model = Model::kReceiveTwo) const;

  /// Sum of `length(x)` over all non-root x (Mcost / Mcost_w).
  [[nodiscard]] Cost merge_cost(Model model = Model::kReceiveTwo) const;

  /// z(root) - root: how many slots after the root the last arrival lands.
  [[nodiscard]] Index span() const noexcept { return size() - 1; }

  /// True iff a root stream of length L serves the whole tree; the paper
  /// requires z - r <= L - 1 (Section 2, "Length of streams").
  [[nodiscard]] bool fits(Index media_length) const noexcept {
    return span() <= media_length - 1;
  }

  /// Full "L-tree" feasibility (the assumption in Lemma 15's proof):
  /// fits(L) *and* every non-root stream length under `model` is at most
  /// L — a stream is a prefix of the media, so Lemma-1 lengths beyond L
  /// cannot be transmitted. All optimal constructions satisfy this; a
  /// chain over L arrivals, for example, does not.
  [[nodiscard]] bool feasible(Index media_length,
                              Model model = Model::kReceiveTwo) const;

  /// The tree induced by the first `count` arrivals (labels 0..count-1).
  /// Parents are unchanged; used by the on-line algorithm's final partial
  /// block (Section 4.1). Requires 1 <= count <= size().
  [[nodiscard]] MergeTree prefix(Index count) const;

  /// The subtree rooted at x, relabeled so that x becomes 0. By the
  /// preorder property this is the label interval [x, z(x)]. Used by the
  /// Lemma-2 decomposition T = T' + T'' + l(x).
  [[nodiscard]] MergeTree subtree(Index x) const;

  /// The canonical-IR view of this tree standing alone at slot `offset`
  /// with a root stream of `media_length` slots: stream i starts at
  /// offset + i, lengths follow Lemma 1 / Lemma 17 (L for the root).
  /// Feasibility is NOT required here — `plan::verify` reports it.
  [[nodiscard]] plan::MergePlan to_plan(Index media_length,
                                        Model model = Model::kReceiveTwo,
                                        Index offset = 0) const;

  /// Structural equality (same parent vector).
  friend bool operator==(const MergeTree& a, const MergeTree& b) {
    return a.parents_ == b.parents_;
  }

  /// Nested rendering, e.g. "0(1(2) 3)" for the tree 0 -> {1 -> {2}, 3}.
  [[nodiscard]] std::string to_string() const;

  /// The raw parent vector (parents()[0] == -1).
  [[nodiscard]] const std::vector<Index>& parents() const noexcept { return parents_; }

 private:
  std::vector<Index> parents_;
  std::vector<std::vector<Index>> children_;
  std::vector<Index> last_descendant_;
};

}  // namespace smerge

#endif  // SMERGE_CORE_MERGE_TREE_H
