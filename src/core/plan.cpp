#include "core/plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/json_writer.h"

namespace smerge::plan {

namespace {

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

/// Comparison slack, scaled so slot-unit plans (integer arithmetic in
/// doubles, exact) and normalized plans (media length 1.0) both get a
/// meaningful tolerance.
double eps_of(double media_length) {
  return 1e-9 * std::max(1.0, media_length);
}

/// z(x) for every stream in one reverse pass: parents precede children,
/// so by the time a stream folds into its parent its own z is final.
std::vector<double> last_arrivals(const MergePlan& plan) {
  const auto start = plan.start();
  const auto parent = plan.parent();
  std::vector<double> z(start.begin(), start.end());
  for (std::size_t i = z.size(); i-- > 1;) {
    const Index p = parent[i];
    if (p != -1 && z[index_of(p)] < z[i]) z[index_of(p)] = z[i];
  }
  return z;
}

/// Diagnostics are capped so an entirely broken large plan cannot turn
/// verification into an O(n) string factory; the count of *violations*
/// is unbounded only in principle (the first one already fails the run).
constexpr std::size_t kMaxDiagnostics = 64;

void fail(PlanReport& report, Invariant invariant, Index stream,
          double observed, double expected, const std::string& message) {
  report.ok = false;
  if (report.first_error.empty()) report.first_error = message;
  if (report.diagnostics.size() < kMaxDiagnostics) {
    report.diagnostics.push_back(
        PlanDiagnostic{invariant, stream, observed, expected, message});
  }
}

}  // namespace

const char* to_string(Invariant invariant) noexcept {
  switch (invariant) {
    case Invariant::kStructure: return "structure";
    case Invariant::kMergeTime: return "merge-time";
    case Invariant::kPlayback: return "playback";
    case Invariant::kModelLegality: return "model-legality";
    case Invariant::kBufferBound: return "buffer-bound";
    case Invariant::kChunkStartRule: return "chunk-start-rule";
    case Invariant::kChunkDeadline: return "chunk-deadline";
    case Invariant::kChunkBuffer: return "chunk-buffer";
  }
  return "?";
}

// --- Segment timelines ------------------------------------------------------

void validate(const ChunkingConfig& config, double media_length) {
  if (!(media_length > 0.0) || !std::isfinite(media_length)) {
    throw std::invalid_argument("chunking: media length must be positive");
  }
  if (!std::isfinite(config.base) || config.base < 0.0) {
    throw std::invalid_argument("chunking: base must be >= 0");
  }
  if (!config.enabled()) return;
  if (!std::isfinite(config.growth) || config.growth < 1.0) {
    throw std::invalid_argument("chunking: growth must be >= 1");
  }
  if (!std::isfinite(config.cap) || config.cap < 0.0) {
    throw std::invalid_argument("chunking: cap must be >= 0");
  }
  if (config.min_start_chunks < 1) {
    throw std::invalid_argument("chunking: min_start_chunks must be >= 1");
  }
  if (media_length / config.base > 1e6) {
    throw std::invalid_argument("chunking: base too small for the media length");
  }
}

double steady_chunk(const ChunkingConfig& config) {
  if (config.cap > 0.0) return config.cap;
  // Default: the start-buffer size — the sum of the first
  // min_start_chunks progressive sizes. A steady chunk bounded by the
  // start buffer always meets its deadline under unit-rate reception.
  double size = config.base;
  double buffer = 0.0;
  for (Index k = 0; k < config.min_start_chunks; ++k) {
    buffer += size;
    size *= config.growth;
  }
  return buffer;
}

std::vector<double> chunk_ends(const ChunkingConfig& config,
                               double media_length) {
  validate(config, media_length);
  std::vector<double> ends;
  if (!config.enabled()) return ends;
  const double cap = steady_chunk(config);
  double size = config.base;
  double cum = 0.0;
  while (cum < media_length) {
    cum += size;
    ends.push_back(std::min(cum, media_length));
    size = std::min(size * config.growth, cap);
  }
  ends.back() = media_length;
  return ends;
}

// --- MergePlan ------------------------------------------------------------

std::size_t MergePlan::check(Index id) const {
  if (id < 0 || id >= n_) throw std::out_of_range("MergePlan: stream id");
  return static_cast<std::size_t>(id);
}

std::span<const Index> MergePlan::children(Index id) const {
  const std::size_t i = check(id);
  const auto lo = static_cast<std::size_t>(child_offset_[i]);
  const auto hi = static_cast<std::size_t>(child_offset_[i + 1]);
  return {child_ + lo, hi - lo};
}

std::vector<Index> MergePlan::root_path(Index id) const {
  (void)check(id);
  std::vector<Index> path;
  for (Index v = id; v != -1; v = parent_[index_of(v)]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

double MergePlan::total_cost() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < un(); ++i) total += length_[i];
  return total;
}

Index MergePlan::peak_bandwidth() const {
  const std::size_t n = un();
  if (n == 0) return 0;
  std::vector<double> ends(n);
  for (std::size_t i = 0; i < n; ++i) ends[i] = start_[i] + length_[i];
  std::sort(ends.begin(), ends.end());
  Index depth = 0;
  Index peak = 0;
  std::size_t e = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (e < n && ends[e] <= start_[i]) {
      --depth;
      ++e;
    }
    ++depth;
    if (depth > peak) peak = depth;
  }
  return peak;
}

// --- PlanBuilder ----------------------------------------------------------

PlanBuilder::PlanBuilder(double media_length, Model model)
    : media_length_(media_length), model_(model) {
  if (!(media_length > 0.0) || !std::isfinite(media_length)) {
    throw std::invalid_argument("PlanBuilder: media length must be positive");
  }
}

Index PlanBuilder::add_stream(double start, Index parent) {
  return add_stream(start, parent,
                    std::numeric_limits<double>::quiet_NaN());
}

Index PlanBuilder::add_stream(double start, Index parent, double length) {
  if (!std::isfinite(start)) {
    throw std::invalid_argument("PlanBuilder: stream start must be finite");
  }
  if (!start_.empty() && start < start_.back()) {
    throw std::invalid_argument("PlanBuilder: starts must be nondecreasing");
  }
  if (parent != -1) {
    if (parent < 0 || parent >= size()) {
      throw std::invalid_argument("PlanBuilder: parent id out of range");
    }
    if (!(start_[index_of(parent)] < start)) {
      throw std::invalid_argument("PlanBuilder: parent must start strictly earlier");
    }
  }
  if (!std::isnan(length) && (!std::isfinite(length) || length < 0.0)) {
    throw std::invalid_argument("PlanBuilder: stream length must be >= 0");
  }
  start_.push_back(start);
  delay_.push_back(0.0);
  length_.push_back(length);
  parent_.push_back(parent);
  return size() - 1;
}

void PlanBuilder::set_chunking(const ChunkingConfig& chunking) {
  validate(chunking, media_length_);
  chunking_ = chunking;
}

void PlanBuilder::record_wait(Index id, double wait) {
  if (id < 0 || id >= size()) {
    throw std::out_of_range("PlanBuilder::record_wait: stream id");
  }
  if (!(wait >= 0.0)) {
    throw std::invalid_argument("PlanBuilder::record_wait: wait must be >= 0");
  }
  double& delay = delay_[index_of(id)];
  if (wait > delay) delay = wait;
}

MergePlan PlanBuilder::build() {
  const std::size_t n = start_.size();
  MergePlan plan;
  plan.media_length_ = media_length_;
  plan.model_ = model_;
  plan.chunking_ = chunking_;
  plan.chunk_ends_ = chunk_ends(chunking_, media_length_);
  plan.n_ = static_cast<Index>(n);

  Index roots = 0;
  for (const Index p : parent_) roots += p == -1 ? 1 : 0;
  plan.roots_ = roots;

  // Carve the two arena blocks (see the header's layout comment).
  const std::size_t edges = n - static_cast<std::size_t>(roots);
  if (n > 0) {
    plan.doubles_ = std::make_unique<double[]>(4 * n);
    plan.indices_ = std::make_unique<Index[]>(2 * n + 1 + edges);
  }
  plan.start_ = plan.doubles_.get();
  plan.delay_ = plan.start_ + n;
  plan.length_ = plan.delay_ + n;
  plan.merge_time_ = plan.length_ + n;
  plan.parent_ = plan.indices_.get();
  plan.child_offset_ = plan.parent_ + n;
  plan.child_ = plan.child_offset_ + n + 1;
  if (n == 0) {
    start_.clear();
    delay_.clear();
    length_.clear();
    parent_.clear();
    return plan;
  }

  std::copy(start_.begin(), start_.end(), plan.start_);
  std::copy(delay_.begin(), delay_.end(), plan.delay_);
  std::copy(parent_.begin(), parent_.end(), plan.parent_);

  // CSR children by counting: two passes, children land in ascending id
  // order because ids are appended in order.
  std::fill(plan.child_offset_, plan.child_offset_ + n + 1, Index{0});
  for (const Index p : parent_) {
    if (p != -1) ++plan.child_offset_[index_of(p) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    plan.child_offset_[i + 1] += plan.child_offset_[i];
  }
  {
    std::vector<Index> cursor(plan.child_offset_, plan.child_offset_ + n);
    for (std::size_t i = 0; i < n; ++i) {
      const Index p = parent_[i];
      if (p != -1) plan.child_[index_of(cursor[index_of(p)]++)] = static_cast<Index>(i);
    }
  }

  // Subtree last arrivals, then lengths (where not explicit) and merge
  // times from the Lemma-1 / Lemma-17 geometry.
  std::vector<double> z(start_.begin(), start_.end());
  for (std::size_t i = n; i-- > 1;) {
    const Index p = parent_[i];
    if (p != -1 && z[index_of(p)] < z[i]) z[index_of(p)] = z[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Index p = parent_[i];
    double length = length_[i];
    if (std::isnan(length)) {
      if (p == -1) {
        length = media_length_;
      } else if (model_ == Model::kReceiveTwo) {
        length = 2.0 * z[i] - start_[i] - start_[index_of(p)];
      } else {
        length = z[i] - start_[index_of(p)];
      }
    }
    plan.length_[i] = length;
    if (p == -1) {
      plan.merge_time_[i] = start_[i] + length;
    } else if (model_ == Model::kReceiveTwo) {
      plan.merge_time_[i] = 2.0 * z[i] - start_[index_of(p)];
    } else {
      plan.merge_time_[i] = start_[i] + (z[i] - start_[index_of(p)]);
    }
  }

  start_.clear();
  delay_.clear();
  length_.clear();
  parent_.clear();
  return plan;
}

// --- Receiving programs ---------------------------------------------------

std::vector<Piece> client_program(const MergePlan& plan, Index client,
                                  Model model) {
  const std::vector<Index> path = plan.root_path(client);  // range-checks
  const auto start = plan.start();
  const double L = plan.media_length();
  const double a = start[index_of(client)];
  const double eps = eps_of(L);
  const auto k = static_cast<Index>(path.size()) - 1;
  const auto t = [&](Index m) { return start[index_of(path[index_of(m)])]; };

  std::vector<Piece> out;
  auto push = [&out, &path, eps](Index m, double from, double to) {
    if (to > from + eps) out.push_back(Piece{path[index_of(m)], from, to});
  };

  if (k == 0) {
    push(0, 0.0, L);
    return out;
  }
  push(k, 0.0, a - t(k - 1));
  if (model == Model::kReceiveTwo) {
    for (Index m = k - 1; m >= 1; --m) {
      push(m, 2.0 * a - t(m + 1) - t(m), 2.0 * a - t(m) - t(m - 1));
    }
    // Root reception capped at the media end (Lemma 15, case 2).
    push(0, std::min(2.0 * a - t(1) - t(0), L), L);
  } else {
    for (Index m = k - 1; m >= 1; --m) {
      push(m, a - t(m), a - t(m - 1));
    }
    push(0, std::min(a - t(0), L), L);
  }
  return out;
}

// --- The universal verifier ----------------------------------------------

namespace {

void client_fail(ClientReport& report, Invariant invariant, double observed,
                 double expected, const std::string& message) {
  const std::string rendered =
      "client " + std::to_string(report.client) + ": " + message;
  if (report.ok) {
    report.ok = false;
    report.error = rendered;
  }
  if (report.diagnostics.size() < kMaxDiagnostics) {
    report.diagnostics.push_back(
        PlanDiagnostic{invariant, report.client, observed, expected, rendered});
  }
}

}  // namespace

ClientReport verify_client(const MergePlan& plan, Index client, Model model) {
  ClientReport report;
  report.client = client;
  const std::vector<Piece> pieces = client_program(plan, client, model);
  const auto start = plan.start();
  const auto length = plan.length();
  const double L = plan.media_length();
  const double eps = eps_of(L);
  const double a = start[index_of(client)];

  // The pieces partition (0, L].
  double cursor = 0.0;
  for (const Piece& p : pieces) {
    if (std::abs(p.from - cursor) > eps) {
      client_fail(report, Invariant::kPlayback, p.from, cursor,
                  "media gap before position " + std::to_string(p.from));
    }
    cursor = p.to;
  }
  if (std::abs(cursor - L) > eps) {
    client_fail(report, Invariant::kPlayback, cursor, L,
                "program ends at position " + std::to_string(cursor));
  }

  // Every piece lies within its source's transmitted duration, and no
  // source starts after the client (reception would trail playback).
  for (const Piece& p : pieces) {
    if (p.to > length[index_of(p.stream)] + eps) {
      client_fail(report, Invariant::kPlayback, p.to,
                  length[index_of(p.stream)],
                  "stream " + std::to_string(p.stream) + " truncated at " +
                      std::to_string(length[index_of(p.stream)]) +
                      " but position " + std::to_string(p.to) + " requested");
    }
    if (start[index_of(p.stream)] > a + eps) {
      client_fail(report, Invariant::kPlayback, start[index_of(p.stream)], a,
                  "source stream starts after the client");
    }
  }

  // Concurrent reads. Window endpoints of adjacent pieces are the same
  // quantity computed through different floating-point expressions, so
  // events are resolved in eps-wide groups with closes before opens.
  {
    std::vector<std::pair<double, int>> events;
    events.reserve(pieces.size() * 2);
    for (const Piece& p : pieces) {
      const double s = start[index_of(p.stream)];
      events.emplace_back(s + p.from, +1);
      events.emplace_back(s + p.to, -1);
    }
    std::sort(events.begin(), events.end());
    Index depth = 0;
    std::size_t i = 0;
    while (i < events.size()) {
      std::size_t j = i;
      while (j < events.size() && events[j].first <= events[i].first + eps) ++j;
      for (std::size_t e = i; e < j; ++e) {
        if (events[e].second < 0) depth += events[e].second;
      }
      for (std::size_t e = i; e < j; ++e) {
        if (events[e].second > 0) depth += events[e].second;
      }
      report.max_concurrent = std::max(report.max_concurrent, depth);
      i = j;
    }
  }
  if (model == Model::kReceiveTwo && report.max_concurrent > 2) {
    client_fail(report, Invariant::kModelLegality,
                static_cast<double>(report.max_concurrent), 2.0,
                "reads " + std::to_string(report.max_concurrent) +
                    " streams at once (receive-two model)");
  }

  // Peak buffered media, probed at every reception endpoint, against
  // the Section-3.3 bound: min(d, L-d) under receive-two (Lemma 15), d
  // under receive-all (every position is received at or after x_0 + p
  // and played at a + p).
  {
    std::vector<double> probes;
    probes.reserve(pieces.size() * 2);
    for (const Piece& p : pieces) {
      const double s = start[index_of(p.stream)];
      probes.push_back(s + p.from);
      probes.push_back(s + p.to);
    }
    for (const double T : probes) {
      double received = 0.0;
      for (const Piece& p : pieces) {
        const double s = start[index_of(p.stream)];
        received += std::clamp(T - s, p.from, p.to) - p.from;
      }
      const double played = std::clamp(T - a, 0.0, L);
      report.peak_buffer = std::max(report.peak_buffer, received - played);
    }
  }
  const auto parent = plan.parent();
  Index root = client;
  while (parent[index_of(root)] != -1) root = parent[index_of(root)];
  const double d = a - start[index_of(root)];
  report.buffer_bound = model == Model::kReceiveTwo ? std::min(d, L - d) : d;
  if (report.peak_buffer > report.buffer_bound + eps) {
    client_fail(report, Invariant::kBufferBound, report.peak_buffer,
                report.buffer_bound,
                "peak buffer " + std::to_string(report.peak_buffer) +
                    " exceeds the Section-3.3 bound " +
                    std::to_string(report.buffer_bound));
  }

  // Chunk-granular playback (segment timelines only; without one the
  // continuous checks above are the whole story). Chunk k covers media
  // (ends[k-1], ends[k]]; its completion time is the latest reception
  // instant of any of its positions under the client's program.
  if (plan.chunked()) {
    const auto ends = plan.chunk_ends();
    const std::size_t chunks = ends.size();
    constexpr double kNever = -std::numeric_limits<double>::infinity();
    std::vector<double> completion(chunks, kNever);
    std::size_t first = 0;  // first chunk not entirely before the piece
    for (const Piece& p : pieces) {
      const double s = start[index_of(p.stream)];
      while (first < chunks && ends[first] <= p.from + eps) ++first;
      for (std::size_t k = first; k < chunks; ++k) {
        const double lo = k == 0 ? 0.0 : ends[k - 1];
        if (lo >= p.to - eps) break;
        completion[k] =
            std::max(completion[k], s + std::min(p.to, ends[k]));
      }
    }
    const auto want =
        std::min<std::size_t>(index_of(plan.chunking().min_start_chunks), chunks);
    const double buffer = ends[want - 1];  // the start-buffer size
    double playback = a;  // playback waits for the start buffer to fill
    for (std::size_t k = 0; k < want; ++k) {
      playback = std::max(playback, completion[k]);
    }
    report.chunk_startup = playback - a;
    if (report.chunk_startup > buffer + eps) {
      client_fail(report, Invariant::kChunkStartRule, report.chunk_startup,
                  buffer,
                  "start buffer took " + std::to_string(report.chunk_startup) +
                      " to fill (budget " + std::to_string(buffer) + ")");
    }
    for (std::size_t k = want; k < chunks; ++k) {
      // Chunk k's playback begins once the preceding chunks have played
      // out: at playback + ends[k-1]. It must be fully buffered by then.
      const double deadline = playback + ends[k - 1];
      if (completion[k] > deadline + eps) {
        client_fail(report, Invariant::kChunkDeadline, completion[k], deadline,
                    "chunk " + std::to_string(k) + " completed at " +
                        std::to_string(completion[k]) +
                        " after its playback deadline " +
                        std::to_string(deadline));
      }
    }
    for (std::size_t k = 0; k < chunks; ++k) {
      if (completion[k] == kNever) continue;  // a playback gap, flagged above
      const double played = std::clamp(completion[k] - playback, 0.0, L);
      report.chunk_peak_buffer =
          std::max(report.chunk_peak_buffer, ends[k] - played);
    }
    const double chunk_bound = report.buffer_bound + buffer;
    if (report.chunk_peak_buffer > chunk_bound + eps) {
      client_fail(report, Invariant::kChunkBuffer, report.chunk_peak_buffer,
                  chunk_bound,
                  "whole-chunk backlog " +
                      std::to_string(report.chunk_peak_buffer) +
                      " exceeds the bound " + std::to_string(chunk_bound));
    }
  }
  return report;
}

PlanReport verify(const MergePlan& plan, Model model,
                  const VerifyOptions& options) {
  PlanReport report;
  const Index n = plan.size();
  const double L = plan.media_length();
  const double eps = eps_of(L);
  const auto start = plan.start();
  const auto delay = plan.delay();
  const auto length = plan.length();
  const auto merge_time = plan.merge_time();
  const auto parent = plan.parent();
  const auto active = options.active;
  if (!active.empty() && active.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument(
        "plan::verify: the active mask must cover every stream");
  }

  // Structure + aggregates, one flat pass over the arrays (ends sort
  // once inside peak_bandwidth).
  const std::vector<double> z = last_arrivals(plan);
  for (Index i = 0; i < n; ++i) {
    const std::size_t u = index_of(i);
    if (i > 0 && start[u] < start[u - 1]) {
      fail(report, Invariant::kStructure, i, start[u], start[u - 1],
           "stream " + std::to_string(i) + " starts before its predecessor");
    }
    const Index p = parent[u];
    if (p < -1 || p >= i) {
      fail(report, Invariant::kStructure, i, static_cast<double>(p), -1.0,
           "stream " + std::to_string(i) + " has an invalid parent");
    } else if (p != -1 && !(start[index_of(p)] < start[u])) {
      fail(report, Invariant::kStructure, i, start[index_of(p)], start[u],
           "stream " + std::to_string(i) + "'s parent does not start earlier");
    }
    if (length[u] < 0.0 || length[u] > L + eps) {
      fail(report, Invariant::kStructure, i, length[u], L,
           "stream " + std::to_string(i) + " transmits for " +
               std::to_string(length[u]) + " (media length " +
               std::to_string(L) + ")");
    }
    if (delay[u] < 0.0) {
      fail(report, Invariant::kStructure, i, delay[u], 0.0,
           "stream " + std::to_string(i) + " has a negative delay");
    }
    // IR integrity: merge_time must match the structural geometry.
    double expected;
    if (p == -1) {
      expected = start[u] + length[u];
    } else if (model == Model::kReceiveTwo) {
      expected = 2.0 * z[u] - start[index_of(p)];
    } else {
      expected = start[u] + (z[u] - start[index_of(p)]);
    }
    if (std::abs(merge_time[u] - expected) > eps) {
      fail(report, Invariant::kMergeTime, i, merge_time[u], expected,
           "stream " + std::to_string(i) + " merge_time " +
               std::to_string(merge_time[u]) + " != " +
               std::to_string(expected));
    }
    report.max_delay = std::max(report.max_delay, delay[u]);
    report.total_cost += length[u];
  }
  report.peak_bandwidth = plan.peak_bandwidth();

  // Per-client playback: every stream's start is (at least potentially)
  // a client arrival, which is exactly the delay-guaranteed promise.
  // Streams whose client has departed (repaired plans) keep their
  // transmitted prefix in the structure but are not replayed.
  for (Index c = 0; c < n; ++c) {
    if (!active.empty() && active[index_of(c)] == 0) continue;
    ClientReport client = verify_client(plan, c, model);
    report.max_concurrent = std::max(report.max_concurrent, client.max_concurrent);
    report.peak_buffer = std::max(report.peak_buffer, client.peak_buffer);
    report.buffer_bound = std::max(report.buffer_bound, client.buffer_bound);
    report.max_chunk_startup =
        std::max(report.max_chunk_startup, client.chunk_startup);
    report.chunk_peak_buffer =
        std::max(report.chunk_peak_buffer, client.chunk_peak_buffer);
    if (!client.ok) {
      if (report.first_error.empty()) report.first_error = client.error;
      report.ok = false;
      for (auto& diagnostic : client.diagnostics) {
        if (report.diagnostics.size() >= kMaxDiagnostics) break;
        report.diagnostics.push_back(std::move(diagnostic));
      }
    }
    ++report.clients;
  }
  return report;
}

// --- JSON dump ------------------------------------------------------------

std::string to_json(const MergePlan& plan, std::span<const StreamEdit> repairs,
                    std::span<const std::uint8_t> active) {
  VerifyOptions options;
  options.active = active;
  const PlanReport report = verify(plan, plan.model(), options);
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("smerge-plan-v2");
  w.key("media_length").value(plan.media_length());
  w.key("model").value(to_string(plan.model()));
  w.key("streams").value(static_cast<std::int64_t>(plan.size()));
  w.key("roots").value(static_cast<std::int64_t>(plan.num_roots()));
  const auto dump_doubles = [&w](const char* name, std::span<const double> v) {
    w.key(name).begin_array();
    for (const double x : v) w.value(x);
    w.end_array();
  };
  dump_doubles("start", plan.start());
  dump_doubles("delay", plan.delay());
  dump_doubles("length", plan.length());
  dump_doubles("merge_time", plan.merge_time());
  w.key("parent").begin_array();
  for (const Index p : plan.parent()) w.value(static_cast<std::int64_t>(p));
  w.end_array();
  w.key("active").begin_array();
  for (const std::uint8_t flag : active) {
    w.value(static_cast<std::int64_t>(flag != 0 ? 1 : 0));
  }
  w.end_array();
  w.key("chunking").begin_object();
  w.key("enabled").value(plan.chunked());
  if (plan.chunked()) {
    w.key("base").value(plan.chunking().base);
    w.key("growth").value(plan.chunking().growth);
    w.key("cap").value(steady_chunk(plan.chunking()));
    w.key("min_start_chunks")
        .value(static_cast<std::int64_t>(plan.chunking().min_start_chunks));
    dump_doubles("chunk_ends", plan.chunk_ends());
  }
  w.end_object();
  w.key("repairs").begin_array();
  for (const StreamEdit& edit : repairs) {
    w.begin_object();
    w.key("stream").value(static_cast<std::int64_t>(edit.stream));
    w.key("old_end").value(edit.old_end);
    w.key("new_end").value(edit.new_end);
    w.key("reroot").value(edit.reroot);
    w.end_object();
  }
  w.end_array();
  w.key("verify").begin_object();
  w.key("ok").value(report.ok);
  if (!report.ok) w.key("first_error").value(report.first_error);
  w.key("diagnostics").begin_array();
  for (const PlanDiagnostic& diagnostic : report.diagnostics) {
    w.begin_object();
    w.key("invariant").value(to_string(diagnostic.invariant));
    w.key("stream").value(static_cast<std::int64_t>(diagnostic.stream));
    w.key("observed").value(diagnostic.observed);
    w.key("expected").value(diagnostic.expected);
    w.key("message").value(diagnostic.message);
    w.end_object();
  }
  w.end_array();
  w.key("clients").value(static_cast<std::int64_t>(report.clients));
  w.key("total_cost").value(report.total_cost);
  w.key("peak_bandwidth").value(static_cast<std::int64_t>(report.peak_bandwidth));
  w.key("max_concurrent").value(static_cast<std::int64_t>(report.max_concurrent));
  w.key("peak_buffer").value(report.peak_buffer);
  w.key("buffer_bound").value(report.buffer_bound);
  w.key("max_delay").value(report.max_delay);
  if (plan.chunked()) {
    w.key("max_chunk_startup").value(report.max_chunk_startup);
    w.key("chunk_peak_buffer").value(report.chunk_peak_buffer);
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace smerge::plan
