// In-place MergePlan repair under session churn.
//
// A MergePlan assumes every client watches to the media end; a live
// session may abandon or seek away mid-stream, leaving its serving
// subtree transmitting media nobody will play. `SessionPlan` wraps an
// immutable base plan in mutable session state and repairs the plan *in
// place* instead of replaying the whole schedule from scratch:
//
//  * `abandon(x, at)` — stream x's client departs at wall time `at`.
//    Along x's root path, subtrees that lost their last viewer are
//    truncated at `at` (transmitted history is never unsent) and still-
//    viewed ancestors shrink to the Lemma-1/Lemma-17 length their
//    remaining viewers need, derived from the *active-only* subtree
//    last arrival z'. Everything off the path is untouched — the repair
//    costs O(path length), not O(n).
//  * `seek(x, at)` — a viewer on stream x jumps elsewhere in the media;
//    its serving subtree cannot ride its old ancestors any more, so x
//    detaches and re-roots in place (extending to the full media, the
//    root obligation) while the abandoned ancestors retract exactly as
//    in a departure.
//
// Every end that moves is logged as a `plan::StreamEdit` — the
// retraction feed the server folds through its channel ledger — and the
// maintained lengths/merge-times are, by construction, exactly what
// `PlanBuilder` would derive for the repaired structure: `snapshot()`
// rebuilds through the builder and `plan::verify` (with the active
// mask) is the oracle the fuzz tests run after every event.
//
// `reference_lengths()` is the deliberate slow path: it replays the
// logged events with a full O(n) recompute per event — the
// "replay from scratch" baseline the repair must beat (and match
// exactly: both paths evaluate the identical formulas, so the result is
// bit-equal, which the churn bench asserts).
#ifndef SMERGE_CORE_PLAN_REPAIR_H
#define SMERGE_CORE_PLAN_REPAIR_H

#include <cstdint>
#include <span>
#include <vector>

#include "core/plan.h"

namespace smerge::plan {

/// Tallies of the repairs a SessionPlan has applied.
struct RepairStats {
  Index abandons = 0;     ///< abandon() calls
  Index seeks = 0;        ///< seek() calls
  Index reroots = 0;      ///< subtrees detached and re-rooted
  Index truncations = 0;  ///< stream ends moved earlier
  Index extensions = 0;   ///< stream ends moved later (re-roots)
  double retracted = 0.0; ///< media-units of transmission cancelled
  double extended = 0.0;  ///< media-units added by re-roots

  friend bool operator==(const RepairStats&, const RepairStats&) = default;
};

/// A mutable session view over an immutable MergePlan. Not thread-safe;
/// one object's churn is applied by one thread (the server's per-object
/// repair pass).
class SessionPlan {
 public:
  /// Copies the base plan's arrays; every stream starts with an active
  /// viewer (the delay-guaranteed premise).
  explicit SessionPlan(const MergePlan& base);

  /// Stream `x`'s client departs at wall time `at` (>= 0, finite).
  /// Throws std::invalid_argument if the client already departed,
  /// std::out_of_range on a bad id.
  void abandon(Index x, double at);

  /// A viewer on stream `x` seeks at wall time `at`: x's subtree
  /// detaches from its ancestors and re-roots in place (no-op on a
  /// stream that is already a root). Requires x's own client active.
  void seek(Index x, double at);

  /// Streams in the plan.
  [[nodiscard]] Index size() const noexcept {
    return static_cast<Index>(start_.size());
  }
  /// Whether stream `x`'s own client is still watching.
  [[nodiscard]] bool active(Index x) const;
  /// Per-stream activity flags — the mask `plan::verify` takes.
  [[nodiscard]] std::span<const std::uint8_t> active_mask() const noexcept {
    return {active_.data(), active_.size()};
  }
  /// Current transmission durations.
  [[nodiscard]] std::span<const double> lengths() const noexcept {
    return {length_.data(), length_.size()};
  }
  /// Every end move so far, in application order.
  [[nodiscard]] std::span<const StreamEdit> edits() const noexcept {
    return {edits_.data(), edits_.size()};
  }
  /// Repair tallies.
  [[nodiscard]] const RepairStats& stats() const noexcept { return stats_; }
  /// Sum of current durations (maintained incrementally).
  [[nodiscard]] double total_cost() const noexcept { return cost_; }

  /// Rebuilds the repaired plan through PlanBuilder (explicit lengths,
  /// current parents, the base plan's chunking and recorded delays).
  /// The builder re-derives merge times from the repaired structure —
  /// identical to the maintained ones, which is what makes
  /// `plan::verify` on the snapshot the repair oracle.
  [[nodiscard]] MergePlan snapshot() const;

  /// The from-scratch cross-check: replays the logged events on a fresh
  /// copy with a full O(n) recompute of subtree state per event, and
  /// returns the resulting durations. Exactly equal to `lengths()` —
  /// same formulas, same application order — at O(events * n) cost.
  [[nodiscard]] std::vector<double> reference_lengths() const;

 private:
  struct LoggedEvent {
    bool is_seek = false;
    Index stream = -1;
    double at = 0.0;
  };

  [[nodiscard]] std::size_t check(Index x) const;
  void check_time(double at) const;
  /// Recomputes z' (active-only) and z (structural) for `v` from its
  /// own flag and its children's summaries.
  void refresh_node(std::size_t v);
  /// Applies the length rule to `v` at wall time `at`: truncate an
  /// unwatched subtree at `at`, shrink a watched non-root toward its
  /// active-only Lemma length (never below elapsed transmission, never
  /// above the current length).
  void repair_node(std::size_t v, double at, bool reroot);
  void set_length(std::size_t v, double target, bool reroot);

  double media_length_ = 1.0;
  Model model_ = Model::kReceiveTwo;
  ChunkingConfig chunking_;
  std::vector<double> start_;
  std::vector<double> delay_;
  std::vector<double> length_;
  std::vector<double> merge_time_;
  std::vector<Index> parent_;
  std::vector<double> base_length_;  ///< pristine lengths, for the replay oracle
  std::vector<Index> base_parent_;   ///< pristine parents, for the replay oracle
  std::vector<std::vector<Index>> children_;
  std::vector<std::uint8_t> active_;
  std::vector<Index> active_count_;  ///< active viewers in the subtree
  std::vector<double> z_active_;     ///< last *active* arrival in the subtree
  std::vector<double> z_all_;        ///< structural subtree last arrival
  std::vector<StreamEdit> edits_;
  std::vector<LoggedEvent> log_;
  RepairStats stats_;
  double cost_ = 0.0;
};

}  // namespace smerge::plan

#endif  // SMERGE_CORE_PLAN_REPAIR_H
