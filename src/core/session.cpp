#include "core/session.h"

namespace smerge {

const char* to_string(SessionEventType type) noexcept {
  switch (type) {
    case SessionEventType::kPause: return "pause";
    case SessionEventType::kSeek: return "seek";
    case SessionEventType::kAbandon: return "abandon";
  }
  return "?";
}

}  // namespace smerge
