// Quickstart: the paper's running example, end to end.
//
// A 2-hour movie with a guaranteed 15-minute start-up delay gives a media
// length of L = 8 slots; here we use the paper's richer L = 15, n = 8
// instance (Figs. 3 and 4) to show the whole pipeline:
//   1. compute the optimal merge forest (36 stream-slots, one full stream),
//   2. print the Fig.-4 merge tree and the Fig.-3 concrete diagram,
//   3. print each client's receiving program,
//   4. verify playback segment by segment.
//
// Run:  ./quickstart [--media-slots=15] [--slots=8]
#include <cstdlib>
#include <iostream>

#include "core/buffer.h"
#include "core/full_cost.h"
#include "schedule/diagram.h"
#include "schedule/playback.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace smerge;

  util::ArgParser args(
      "quickstart: optimal delay-guaranteed stream merging on one instance");
  args.add_int("media-slots", 15, "media length L in slots (delay = 1 slot)");
  args.add_int("slots", 8, "time horizon n in slots (one arrival per slot)");
  try {
    if (!args.parse(argc, argv)) {
      std::cout << args.help();
      return EXIT_SUCCESS;
    }
    const Index L = args.get_int("media-slots");
    const Index n = args.get_int("slots");

    const StreamPlan plan = optimal_stream_count(L, n);
    std::cout << "Instance: media length L = " << L << " slots, horizon n = " << n
              << " slots\n"
              << "Optimal full cost F(L,n) = " << plan.cost << " stream-slots ("
              << plan.streams << " full stream" << (plan.streams == 1 ? "" : "s")
              << ", average bandwidth "
              << static_cast<double>(plan.cost) / static_cast<double>(n)
              << " channels)\n\n";

    const MergeForest forest = optimal_merge_forest(L, n);
    for (Index t = 0; t < forest.num_trees(); ++t) {
      std::cout << "Merge tree " << t << " (cf. Fig. 4):\n"
                << render_tree(forest.tree(t), forest.tree_offset(t)) << '\n';
    }

    std::cout << "Concrete transmission diagram (cf. Fig. 3):\n"
              << concrete_diagram(forest) << '\n';

    std::cout << "Receiving programs (segments <- stream):\n";
    for (Index a = 0; a < n; ++a) {
      const ReceivingProgram prog(forest, a);
      const Index d = a - forest.tree_offset(forest.tree_of(a));
      std::cout << "  " << prog.to_string()
                << "   buffer <= " << buffer_requirement(d, L) << " slots\n";
    }

    std::cout << "\nClient-side view of the last arrival:\n"
              << client_timeline(forest, n - 1);

    const ForestReport report = verify_forest(forest);
    std::cout << "\nPlayback verification: " << (report.ok ? "OK" : "FAILED")
              << " (" << report.clients << " clients, peak "
              << report.max_concurrent << " concurrent streams per client, "
              << "worst buffer " << report.peak_buffer << " slots)\n";
    if (!report.ok) {
      std::cerr << "error: " << report.first_error << '\n';
      return EXIT_FAILURE;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
