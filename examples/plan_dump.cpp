// plan_dump — emit a canonical MergePlan as a smerge-plan-v2 JSON
// document on stdout, for tools/plan_dump.py to pretty-print.
//
// Three producers, one per layer of the repository:
//   --kind=offline   Theorem-10 optimal uniform-arrival forest
//   --kind=online    the Section-4.1 Delay Guaranteed schedule
//   --kind=engine    a per-object plan assembled by the simulation
//                    engine from the greedy dyadic policy's emissions
// The v2 schema additions are drivable from the CLI: --chunk-base
// attaches a progressive segment timeline, and --churn applies that
// fraction of abandon/seek session events through the in-place
// SessionPlan repair, so the dump carries the repair log and the
// per-stream active mask. Whatever the producer, the dump embeds the
// universal verifier's report (run under the active mask), so
// downstream tooling can gate on `verify.ok`.
#include <algorithm>
#include <iostream>
#include <string>

#include "core/full_cost.h"
#include "core/plan.h"
#include "core/plan_repair.h"
#include "online/delay_guaranteed.h"
#include "online/policy.h"
#include "sim/engine.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

smerge::plan::MergePlan engine_plan(std::uint64_t seed) {
  using namespace smerge::sim;
  EngineConfig config;
  config.workload.process = ArrivalProcess::kPoisson;
  config.workload.objects = 4;
  config.workload.mean_gap = 0.01;
  config.workload.horizon = 3.0;
  config.workload.seed = seed;
  config.delay = 0.05;
  config.collect_plans = true;
  smerge::GreedyMergePolicy policy(smerge::merging::DyadicParams{},
                                   /*batched=*/true);
  EngineResult result = run_engine(config, policy);
  return std::move(result.plans.front());  // the most popular object
}

/// Rebuilds the plan stream-for-stream with a segment timeline attached
/// (plans are immutable; the builder re-derives identical merge times).
smerge::plan::MergePlan with_chunking(const smerge::plan::MergePlan& plan,
                                      double base) {
  smerge::plan::PlanBuilder builder(plan.media_length(), plan.model());
  builder.set_chunking({.base = base});
  for (smerge::Index i = 0; i < plan.size(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    builder.add_stream(plan.start()[u], plan.parent()[u], plan.length()[u]);
    if (plan.delay()[u] > 0.0) builder.record_wait(i, plan.delay()[u]);
  }
  return builder.build();
}

}  // namespace

int main(int argc, char** argv) {
  smerge::util::ArgParser parser(
      "plan_dump — emit a canonical MergePlan as smerge-plan-v2 JSON");
  parser.add_string("kind", "offline",
                    "producer: offline | online | engine");
  parser.add_int("media-slots", 16, "media length L in slots (offline/online)");
  parser.add_int("arrivals", 21, "number of arrivals / slots to plan");
  parser.add_int("seed", 20260728, "workload seed (engine)");
  parser.add_double("chunk-base", 0.0,
                    "first-chunk duration; > 0 attaches a segment timeline");
  parser.add_double("churn", 0.0,
                    "fraction of streams hit by abandon/seek churn, repaired "
                    "in place before dumping");

  try {
    if (!parser.parse(argc, argv)) {
      std::cout << parser.help();
      return 0;
    }
    const std::string kind = parser.get_string("kind");
    const auto L = parser.get_int("media-slots");
    const auto n = parser.get_int("arrivals");
    smerge::plan::MergePlan plan;
    if (kind == "offline") {
      plan = smerge::optimal_merge_forest(L, n).to_plan();
    } else if (kind == "online") {
      plan = smerge::DelayGuaranteedOnline(L).to_plan(n);
    } else if (kind == "engine") {
      plan = engine_plan(static_cast<std::uint64_t>(parser.get_int("seed")));
    } else {
      std::cerr << "error: unknown --kind '" << kind
                << "' (offline | online | engine)\n";
      return 2;
    }
    const double chunk_base = parser.get_double("chunk-base");
    if (chunk_base > 0.0) plan = with_chunking(plan, chunk_base);

    const double churn = parser.get_double("churn");
    if (churn > 0.0) {
      smerge::plan::SessionPlan session(plan);
      smerge::util::SplitMix64 rng(
          static_cast<std::uint64_t>(parser.get_int("seed")));
      for (smerge::Index i = 0; i < plan.size(); ++i) {
        if (rng.next_double() >= churn) continue;
        const auto u = static_cast<std::size_t>(i);
        const double at = plan.start()[u] +
                          rng.next_double() * std::max(plan.length()[u], 1e-12);
        if (rng.next_double() < 0.25) {
          session.seek(i, at);
        } else {
          session.abandon(i, at);
        }
      }
      const smerge::plan::MergePlan repaired = session.snapshot();
      std::cout << smerge::plan::to_json(repaired, session.edits(),
                                         session.active_mask())
                << '\n';
      return smerge::plan::verify(repaired, repaired.model(),
                                  {session.active_mask()})
                     .ok
                 ? 0
                 : 1;
    }
    std::cout << smerge::plan::to_json(plan) << '\n';
    return smerge::plan::verify(plan).ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
