// plan_dump — emit a canonical MergePlan as a smerge-plan-v1 JSON
// document on stdout, for tools/plan_dump.py to pretty-print.
//
// Three producers, one per layer of the repository:
//   --kind=offline   Theorem-10 optimal uniform-arrival forest
//   --kind=online    the Section-4.1 Delay Guaranteed schedule
//   --kind=engine    a per-object plan assembled by the simulation
//                    engine from the greedy dyadic policy's emissions
// Whatever the producer, the dump embeds the universal verifier's
// report, so downstream tooling can gate on `verify.ok`.
#include <iostream>
#include <string>

#include "core/full_cost.h"
#include "core/plan.h"
#include "online/delay_guaranteed.h"
#include "online/policy.h"
#include "sim/engine.h"
#include "util/cli.h"

namespace {

smerge::plan::MergePlan engine_plan(std::uint64_t seed) {
  using namespace smerge::sim;
  EngineConfig config;
  config.workload.process = ArrivalProcess::kPoisson;
  config.workload.objects = 4;
  config.workload.mean_gap = 0.01;
  config.workload.horizon = 3.0;
  config.workload.seed = seed;
  config.delay = 0.05;
  config.collect_plans = true;
  smerge::GreedyMergePolicy policy(smerge::merging::DyadicParams{},
                                   /*batched=*/true);
  EngineResult result = run_engine(config, policy);
  return std::move(result.plans.front());  // the most popular object
}

}  // namespace

int main(int argc, char** argv) {
  smerge::util::ArgParser parser(
      "plan_dump — emit a canonical MergePlan as smerge-plan-v1 JSON");
  parser.add_string("kind", "offline",
                    "producer: offline | online | engine");
  parser.add_int("media-slots", 16, "media length L in slots (offline/online)");
  parser.add_int("arrivals", 21, "number of arrivals / slots to plan");
  parser.add_int("seed", 20260728, "workload seed (engine)");

  try {
    if (!parser.parse(argc, argv)) {
      std::cout << parser.help();
      return 0;
    }
    const std::string kind = parser.get_string("kind");
    const auto L = parser.get_int("media-slots");
    const auto n = parser.get_int("arrivals");
    smerge::plan::MergePlan plan;
    if (kind == "offline") {
      plan = smerge::optimal_merge_forest(L, n).to_plan();
    } else if (kind == "online") {
      plan = smerge::DelayGuaranteedOnline(L).to_plan(n);
    } else if (kind == "engine") {
      plan = engine_plan(static_cast<std::uint64_t>(parser.get_int("seed")));
    } else {
      std::cerr << "error: unknown --kind '" << kind
                << "' (offline | online | engine)\n";
      return 2;
    }
    std::cout << smerge::plan::to_json(plan) << '\n';
    return smerge::plan::verify(plan).ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
