// Reservation system: the paper's motivating off-line application.
//
// A provider sells time-slotted reservations for a popular broadcast (the
// off-line environment of Section 1: "the requests of all clients are
// known ahead of time... the server computes all the receiving programs
// and the broadcasting schedules ahead of time"). Given the movie length
// and the guaranteed start-up delay in minutes, this example:
//   * converts to slot units,
//   * plans the optimal stream count (Theorem 12) and, if the set-top
//     boxes have a bounded buffer, the Theorem-16 variant,
//   * emits the full multicast schedule and per-slot channel profile,
//   * verifies every reservation's playback.
//
// Run: ./reservation_system --movie-minutes=120 --delay-minutes=15
//        --reservation-hours=6 [--buffer-minutes=30]
#include <cstdlib>
#include <iostream>

#include "core/buffer.h"
#include "core/full_cost.h"
#include "schedule/diagram.h"
#include "schedule/playback.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace smerge;

  util::ArgParser args("reservation_system: off-line delay-guaranteed planning");
  args.add_int("movie-minutes", 120, "movie length in minutes");
  args.add_int("delay-minutes", 15, "guaranteed start-up delay in minutes");
  args.add_int("reservation-hours", 6, "length of the reservation horizon in hours");
  args.add_int("buffer-minutes", 0,
               "client buffer size in minutes (0 = unbounded, Section 3.3 otherwise)");
  args.add_bool("diagram", false, "print the concrete transmission diagram");
  try {
    if (!args.parse(argc, argv)) {
      std::cout << args.help();
      return EXIT_SUCCESS;
    }
    const Index delay = args.get_int("delay-minutes");
    if (delay < 1) throw std::invalid_argument("delay must be >= 1 minute");
    if (args.get_int("movie-minutes") % delay != 0) {
      throw std::invalid_argument("movie length must be a multiple of the delay");
    }
    const Index L = args.get_int("movie-minutes") / delay;
    const Index n = args.get_int("reservation-hours") * 60 / delay;
    const Index buffer_minutes = args.get_int("buffer-minutes");

    std::cout << "Movie: " << args.get_int("movie-minutes") << " min, delay "
              << delay << " min  =>  L = " << L << " slots, horizon n = " << n
              << " slots\n";

    MergeForest forest = [&] {
      if (buffer_minutes == 0) return optimal_merge_forest(L, n);
      const Index B = std::max<Index>(1, buffer_minutes / delay);
      std::cout << "Client buffer: " << buffer_minutes << " min = " << B
                << " slots (Theorem 16 applies)\n";
      return optimal_merge_forest_bounded(L, n, B);
    }();

    const Cost batching = n * L;
    std::cout << "Planned bandwidth: " << forest.full_cost() << " stream-slots with "
              << forest.num_trees() << " full streams (batching alone: " << batching
              << "; saving factor "
              << static_cast<double>(batching) / static_cast<double>(forest.full_cost())
              << ")\n\n";

    const StreamSchedule schedule(forest);
    util::TextTable table({"stream", "starts (slot)", "length (slots)",
                           "length (min)", "role"});
    for (Index x = 0; x < std::min<Index>(forest.size(), 20); ++x) {
      const bool root = forest.tree_offset(forest.tree_of(x)) == x;
      table.add_row(stream_name(x), x, schedule.stream(x).length,
                    schedule.stream(x).length * delay,
                    root ? "full stream" : "truncated");
    }
    std::cout << table.to_string();
    if (forest.size() > 20) {
      std::cout << "  ... (" << forest.size() - 20 << " more streams)\n";
    }
    std::cout << "\nPeak channels in use: " << schedule.peak_bandwidth() << '\n';

    if (args.get_bool("diagram")) {
      std::cout << '\n' << concrete_diagram(forest);
    }

    std::cout << "\nSample receiving programs:\n";
    for (const Index a : {Index{0}, n / 2, n - 1}) {
      std::cout << "  " << ReceivingProgram(forest, a).to_string() << '\n';
    }

    const ForestReport report = verify_forest(forest);
    std::cout << "\nPlayback verification: " << (report.ok ? "OK" : "FAILED")
              << "; worst client buffer " << report.peak_buffer << " slots ("
              << report.peak_buffer * delay << " min)\n";
    if (!report.ok) {
      std::cerr << "error: " << report.first_error << '\n';
      return EXIT_FAILURE;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
