// VoD server: the paper's on-line environment (Section 4) as a service
// simulation. Clients request one movie over a long horizon; the server
// can run any of the studied policies:
//   * dg       — on-line Delay Guaranteed (stream every slot, static trees)
//   * dyadic   — immediate-service (alpha,beta)-dyadic merging [9]
//   * batched  — batch to slot ends, then dyadic merging
//   * hybrid   — Section-5 future work: DG under load, dyadic when idle
//
// Run: ./vod_server --policy=all --gap=0.004 --delay=0.01 --horizon=100
//        [--poisson] [--seed=42]
// (gap/delay/horizon are fractions / multiples of the media length)
#include <cstdlib>
#include <iostream>

#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "sim/hybrid.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace smerge;
  using namespace smerge::sim;

  util::ArgParser args("vod_server: on-line policies on one arrival trace");
  args.add_string("policy", "all", "dg | dyadic | batched | hybrid | all");
  args.add_double("gap", 0.004, "(mean) inter-arrival gap, fraction of the media");
  args.add_double("delay", 0.01, "guaranteed start-up delay, fraction of the media");
  args.add_double("horizon", 100.0, "simulated time in media lengths");
  args.add_bool("poisson", false, "Poisson arrivals instead of constant rate");
  args.add_int("seed", 42, "RNG seed for Poisson arrivals");
  try {
    if (!args.parse(argc, argv)) {
      std::cout << args.help();
      return EXIT_SUCCESS;
    }
    const double gap = args.get_double("gap");
    const double delay = args.get_double("delay");
    const double horizon = args.get_double("horizon");
    const bool poisson = args.get_bool("poisson");
    const std::string policy = args.get_string("policy");

    const std::vector<double> arrivals =
        poisson ? poisson_arrivals(gap, horizon,
                                   static_cast<std::uint64_t>(args.get_int("seed")))
                : constant_arrivals(gap, horizon);
    std::cout << (poisson ? "Poisson" : "Constant-rate") << " arrivals: "
              << arrivals.size() << " clients over " << horizon
              << " media lengths (gap " << gap << ", delay " << delay << ")\n\n";

    util::TextTable table(
        {"policy", "streams served", "full streams", "peak channels", "max delay"});
    table.set_align(0, util::Align::kLeft);

    const auto want = [&](const char* name) {
      return policy == "all" || policy == name;
    };
    if (want("dg")) {
      const BandwidthResult r = run_delay_guaranteed(delay, horizon);
      table.add_row("delay-guaranteed", r.streams_served, r.full_streams,
                    r.peak_concurrency, delay);
    }
    if (want("dyadic")) {
      merging::DyadicParams params;
      if (!poisson) params.beta = dyadic_beta_for_constant_rate(delay);
      const BandwidthResult r = run_dyadic(arrivals, params);
      table.add_row("dyadic (immediate)", r.streams_served, r.full_streams,
                    r.peak_concurrency, 0.0);
    }
    if (want("batched")) {
      merging::DyadicParams params;
      if (!poisson) params.beta = dyadic_beta_for_constant_rate(delay);
      const BandwidthResult r = run_batched_dyadic(arrivals, delay, params);
      table.add_row("dyadic (batched)", r.streams_served, r.full_streams,
                    r.peak_concurrency, delay);
    }
    if (want("hybrid")) {
      HybridParams params;
      params.delay = delay;
      const HybridOutcome out = run_hybrid(arrivals, horizon, params);
      table.add_row("hybrid (Sec. 5)", out.bandwidth.streams_served,
                    out.bandwidth.full_streams, out.bandwidth.peak_concurrency,
                    delay);
      std::cout << "hybrid telemetry: " << out.dg_slots << " DG slots, "
                << out.dyadic_slots << " dyadic slots, " << out.mode_switches
                << " mode switches\n\n";
    }
    std::cout << table.to_string();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
