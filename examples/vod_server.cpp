// VoD server: a media-on-demand catalogue served live by the sharded
// incremental ServerCore (src/server/server_core.h) — the paper's
// Section-4 on-line environment as an operable service, not a post-hoc
// experiment loop.
//
// Serving modes:
//   * policy path   — any pluggable OnlinePolicy (dg | batching |
//                     greedy | greedy-batched) over a Zipf catalogue,
//                     arrivals ingested through the per-shard mailboxes;
//   * capacity path — slotted batching with a channel budget and a
//                     selectable admission mode (reject | defer |
//                     degrade | observe), decided live at admission
//                     time against the incremental channel ledger.
//
// A live stats line (current/peak channels, running P² delay
// percentiles, admission counters) prints as the run progresses — the
// queries the legacy end-of-run engine could not answer.
//
// Session churn (policy path only): --sessions plus --abandon-rate /
// --pause-rate / --seek-rate switch the core onto the
// session-lifecycle path — live session counts join the stats line,
// and the end-of-run table reports the in-place plan repairs
// (truncations, re-roots, retracted cost) the churn caused.
//
// Fault injection (policy path only): --fault=crash@K[,torn=N]
// [,corrupt=I][,drop=P] runs the workload through the deterministic
// crash/recovery harness (sim/fault.h) — the run is killed after WAL
// record K, recovered from the surviving checkpoint + WAL tail, and
// finished; the recovery report prints before the usual tables.
//
// Run: ./vod_server --objects=64 --policy=greedy-batched --gap=0.002
//        --delay=0.01 --horizon=20 [--shards=4] [--seed=42]
//      ./vod_server --objects=64 --capacity=32 --mode=defer --gap=0.04
//        --delay=0.02 --horizon=20
//      ./vod_server --objects=64 --policy=greedy --sessions
//        --abandon-rate=0.2 --pause-rate=0.1 --seek-rate=0.05 --horizon=20
//      ./vod_server --objects=64 --fault=crash@200,torn=9 --horizon=20
//      ./vod_server --listen --port=7070 --reactors=2 --objects=64
//        (then: ./vod_loadgen --port=7070 --objects=64 ...)
//
// Network mode (--listen): arrivals come from clients over the binary
// admission protocol (src/net/protocol.h) instead of a generated
// workload; a client FINISH ends the run. HTTP GET /stats, /live and
// /dispatch answer JSON on the same port.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/server.h"
#include "online/policy.h"
#include "server/server_core.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/workload.h"
#include "util/cli.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace smerge;

std::unique_ptr<OnlinePolicy> make_policy(const std::string& name) {
  if (name == "dg") return std::make_unique<DelayGuaranteedPolicy>();
  if (name == "batching") return std::make_unique<BatchingPolicy>();
  if (name == "greedy") {
    return std::make_unique<GreedyMergePolicy>(merging::DyadicParams{},
                                               /*batched=*/false);
  }
  if (name == "greedy-batched") {
    return std::make_unique<GreedyMergePolicy>(merging::DyadicParams{},
                                               /*batched=*/true);
  }
  throw std::invalid_argument("unknown --policy: " + name);
}

void print_live(const server::LiveStats& live, double now, bool sessions) {
  std::cout << "t=" << now << ": arrivals " << live.arrivals << ", admitted "
            << live.admitted << ", rejected " << live.rejected << ", deferred "
            << live.deferrals << ", degraded " << live.degraded << " | channels "
            << live.current_channels << " now / " << live.peak_channels
            << " peak | wait p50/p99/max " << live.wait.p50 << "/"
            << live.wait.p99 << "/" << live.wait.max << " | cost " << live.cost;
  if (sessions) {
    std::cout << " | sessions " << live.live_sessions << " live, "
              << live.session_pauses << " paused, " << live.session_seeks
              << " sought, " << live.session_abandons << " abandoned";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smerge::sim;

  util::ArgParser args(
      "vod_server: a live ServerCore catalogue under a pluggable policy or "
      "capacity-aware admission");
  // Batching is the default because it emits its streams at admission
  // time, so the live channel queries show the run as it happens; the
  // greedy mergers and DG resolve (or emit) their schedules at the
  // horizon, filling the ledger only at finish().
  args.add_string("policy", "batching",
                  "dg | batching | greedy | greedy-batched");
  args.add_int("objects", 64, "catalogue size (Zipf-weighted popularity)");
  args.add_double("gap", 0.002, "aggregate mean inter-arrival gap (media lengths)");
  args.add_double("delay", 0.01, "guaranteed start-up delay, fraction of the media");
  args.add_double("horizon", 20.0, "simulated time in media lengths");
  args.add_int("shards", 2, "mailbox/thread fan-out width");
  args.add_int("capacity", 0,
               "channel budget; > 0 switches to the capacity-admission path");
  args.add_string("mode", "reject",
                  "admission mode with --capacity: observe | reject | defer | "
                  "degrade");
  args.add_bool("constant", false, "constant-rate arrivals instead of Poisson");
  args.add_bool("sessions", false,
                "enable the session-lifecycle path (required by the churn "
                "rates; policy path only)");
  args.add_double("abandon-rate", 0.0,
                  "P(session departs mid-play); needs --sessions");
  args.add_double("pause-rate", 0.0, "P(session pauses once); needs --sessions");
  args.add_double("seek-rate", 0.0, "P(session seeks once); needs --sessions");
  args.add_int("seed", 42, "workload RNG seed");
  args.add_int("live-every", 4, "live stats printouts per run");
  args.add_bool("pin", false,
                "pin the shard drain workers to cores (policy path only; "
                "pure mechanism, results never change)");
  args.add_bool("no-simd", false,
                "force the scalar ledger kernels (disable the SIMD runtime "
                "dispatch; pure mechanism, results never change)");
  args.add_string("fault", "none",
                  "fault spec crash@K[,torn=N][,corrupt=I][,drop=P]: run the "
                  "deterministic crash/recovery harness (policy path only)");
  args.add_bool("listen", false,
                "serve the admission protocol over TCP (arrivals come from "
                "clients, not a generated workload; see examples/vod_loadgen)");
  args.add_string("bind", "127.0.0.1", "listen address; needs --listen");
  args.add_int("port", 0, "listen port, 0 = ephemeral; needs --listen");
  args.add_int("reactors", 1, "epoll reactor threads; needs --listen");
  args.add_int("drain-us", 500, "drain cadence in microseconds; needs --listen");
  try {
    if (!args.parse(argc, argv)) {
      std::cout << args.help();
      return EXIT_SUCCESS;
    }
    WorkloadConfig workload;
    workload.process = args.get_bool("constant") ? ArrivalProcess::kConstantRate
                                                 : ArrivalProcess::kPoisson;
    workload.objects = args.get_int("objects");
    workload.mean_gap = args.get_double("gap");
    workload.horizon = args.get_double("horizon");
    workload.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    validate(workload);
    const double delay = args.get_double("delay");
    const Index capacity = args.get_int("capacity");
    SessionChurnConfig churn;
    churn.abandon_rate = args.get_double("abandon-rate");
    churn.pause_rate = args.get_double("pause-rate");
    churn.seek_rate = args.get_double("seek-rate");
    validate(churn);

    // Contradictory flag combinations are usage errors, never silent
    // reinterpretations: a clamped shard count or an ignored churn rate
    // would run a different experiment than the one asked for.
    if (args.get_int("shards") < 1) {
      throw std::invalid_argument("--shards must be >= 1");
    }
    if (args.get_int("live-every") < 1) {
      throw std::invalid_argument("--live-every must be >= 1");
    }
    if (churn.enabled() && !args.get_bool("sessions")) {
      throw std::invalid_argument(
          "session churn rates need --sessions (the session-lifecycle path "
          "must be opted into, not inferred)");
    }
    if (args.get_bool("sessions") && !churn.enabled()) {
      throw std::invalid_argument(
          "--sessions needs at least one positive churn rate "
          "(--abandon-rate / --pause-rate / --seek-rate)");
    }
    if (args.provided("mode") && capacity <= 0) {
      throw std::invalid_argument(
          "--mode selects the capacity-admission behaviour; it needs "
          "--capacity > 0");
    }
    if (capacity > 0 && args.provided("shards")) {
      throw std::invalid_argument(
          "the capacity path is serial (admission order is decision "
          "order); drop --shards");
    }
    if (churn.enabled() && capacity > 0) {
      throw std::invalid_argument(
          "session churn runs on the policy path; drop --capacity");
    }
    if (args.provided("fault") && capacity > 0) {
      throw std::invalid_argument(
          "--fault drives the policy path through the crash/recovery "
          "harness; drop --capacity");
    }
    if (args.get_bool("pin") && capacity > 0) {
      throw std::invalid_argument(
          "the capacity path is serial — there are no shard workers to "
          "pin; drop --pin");
    }
    const bool listen = args.get_bool("listen");
    for (const char* flag : {"bind", "port", "reactors", "drain-us"}) {
      if (args.provided(flag) && !listen) {
        throw std::invalid_argument(std::string("--") + flag +
                                    " configures the network front end; it "
                                    "needs --listen");
      }
    }
    if (listen) {
      if (args.provided("fault")) {
        throw std::invalid_argument(
            "--fault replays a generated workload through the crash "
            "harness; --listen serves live arrivals — drop one");
      }
      if (capacity > 0 || args.provided("mode")) {
        throw std::invalid_argument(
            "the network front end runs the policy path; drop "
            "--capacity/--mode");
      }
      if (args.get_bool("sessions")) {
        throw std::invalid_argument(
            "the wire protocol carries bare admissions, not session "
            "lifecycles; drop --sessions");
      }
      for (const char* flag : {"gap", "constant", "seed", "live-every"}) {
        if (args.provided(flag)) {
          throw std::invalid_argument(
              std::string("--listen takes arrivals from clients; --") + flag +
              " would configure a generated workload and have no effect");
        }
      }
      if (args.get_int("reactors") < 1) {
        throw std::invalid_argument("--reactors must be >= 1");
      }
      if (args.get_int("drain-us") < 1) {
        throw std::invalid_argument("--drain-us must be >= 1");
      }
      if (args.get_int("port") < 0 || args.get_int("port") > 65535) {
        throw std::invalid_argument("--port must be in [0, 65535]");
      }
    }
    if (args.get_bool("no-simd")) util::simd::force_scalar(true);
    const bool pin = args.get_bool("pin");
    const int checkpoints = static_cast<int>(args.get_int("live-every"));
    const unsigned shards = static_cast<unsigned>(args.get_int("shards"));

    if (listen) {
      // Network front end: arrivals arrive over TCP, a client FINISH
      // ends the run. EADDRINUSE (and any other bind failure) throws
      // out of start() into the error handler below.
      std::unique_ptr<OnlinePolicy> policy =
          make_policy(args.get_string("policy"));
      server::ServerCoreConfig config;
      config.objects = workload.objects;
      config.delay = delay;
      config.horizon = workload.horizon;
      config.shards = shards;
      config.pin_workers = pin;
      net::NetServerConfig net;
      net.host = args.get_string("bind");
      net.port = static_cast<std::uint16_t>(args.get_int("port"));
      net.reactors = static_cast<unsigned>(args.get_int("reactors"));
      net.drain_interval_us =
          static_cast<std::uint64_t>(args.get_int("drain-us"));
      net::NetServer server(net, config, *policy);
      server.start();
      std::cout << "listening on " << net.host << ":" << server.port() << " ("
                << policy->name() << ", " << workload.objects << " objects over "
                << shards << " shards, " << net.reactors
                << " reactors, drain every " << net.drain_interval_us
                << " us)\nadmission protocol SMN1; HTTP GET /stats /live "
                   "/dispatch on the same port; a client FINISH ends the run\n"
                << std::flush;
      while (!server.wait_finished(std::chrono::seconds(1))) {
        const net::NetCounters c = server.counters();
        const server::LiveStats live = server.live();
        std::cout << "conns " << c.accepted - c.closed << " open / "
                  << c.accepted << " accepted | admits " << c.admits
                  << ", tickets " << c.tickets << ", drains " << c.drains
                  << " | arrivals " << live.arrivals << ", wait p99 "
                  << live.wait.p99 << " | bytes " << c.bytes_in << " in / "
                  << c.bytes_out << " out\n"
                  << std::flush;
      }
      if (!server.error().empty()) {
        std::cerr << "error: " << server.error() << '\n';
        return EXIT_FAILURE;
      }
      const server::WireSummary& sum = server.summary();
      const server::Snapshot& snap = server.snapshot();
      std::cout << "\n";
      util::TextTable table({"arrivals", "streams", "streams served",
                             "peak channels", "p99 wait", "max wait",
                             "violations"});
      table.add_row(snap.total_arrivals, snap.total_streams,
                    snap.streams_served, snap.peak_concurrency,
                    util::format_fixed(snap.wait.p99, 5),
                    util::format_fixed(snap.wait.max, 5),
                    snap.guarantee_violations);
      std::cout << table.to_string() << "\nsnapshot digest " << std::hex
                << sum.digest << std::dec
                << " (compare against a trace-fed run or vod_loadgen "
                   "--verify)\n";
      server.stop();
      return EXIT_SUCCESS;
    }

    if (args.provided("fault")) {
      // Crash/recovery harness: the whole workload through
      // run_engine_with_faults, recovery report included.
      const sim::FaultPlan plan = parse_fault_plan(args.get_string("fault"));
      EngineConfig engine;
      engine.workload = workload;
      engine.delay = delay;
      engine.threads = shards;
      engine.pin_workers = pin;
      engine.churn = churn;
      std::unique_ptr<OnlinePolicy> policy =
          make_policy(args.get_string("policy"));
      std::cout << "fault harness: " << policy->name() << ", "
                << workload.objects << " objects over " << shards
                << " shards, fault '" << args.get_string("fault") << "'\n\n";
      const FaultRunResult run = run_engine_with_faults(engine, *policy, plan);
      const FaultReport& report = run.report;
      if (report.crashed) {
        std::cout << "crashed at WAL record " << report.crash_record << " ("
                  << report.checkpoints_written << " checkpoints written)\n"
                  << "recovery: "
                  << (report.recovery.used_checkpoint
                          ? "checkpoint #" +
                                std::to_string(report.recovery.checkpoint_index)
                          : std::string("cold start"))
                  << ", " << report.recovery.rejected_checkpoints.size()
                  << " candidates rejected, "
                  << report.recovery.wal_records_replayed
                  << " WAL records replayed"
                  << (report.recovery.wal_torn
                          ? ", torn tail of " +
                                std::to_string(
                                    report.recovery.wal_dropped_bytes) +
                                " bytes dropped"
                          : std::string())
                  << "\nre-fed " << report.refed_batches
                  << " per-object remainders\n";
      } else {
        std::cout << "fault never fired (crash point past the run)\n";
      }
      if (report.dropped_deliveries > 0) {
        std::cout << "mailbox faults: " << report.dropped_deliveries
                  << " deliveries dropped, " << report.lost_batches
                  << " batches lost after retries\n";
      }
      const EngineResult& r = run.result;
      std::cout << "\n";
      util::TextTable table({"arrivals", "streams", "streams served",
                             "peak channels", "p99 wait", "max wait",
                             "violations"});
      table.add_row(r.total_arrivals, r.total_streams, r.streams_served,
                    r.peak_concurrency, util::format_fixed(r.wait.p99, 5),
                    util::format_fixed(r.wait.max, 5), r.guarantee_violations);
      std::cout << table.to_string();
      if (r.total_sessions > 0) {
        std::cout << "\nsession lifecycle: " << r.total_sessions
                  << " sessions, " << r.session_pauses << " pauses, "
                  << r.session_seeks << " seeks, " << r.session_abandons
                  << " abandons\n";
      }
      return EXIT_SUCCESS;
    }

    const std::vector<double> weights =
        zipf_weights(workload.objects, workload.zipf_exponent);
    std::vector<std::vector<double>> traces(
        static_cast<std::size_t>(workload.objects));
    for (Index m = 0; m < workload.objects; ++m) {
      traces[static_cast<std::size_t>(m)] =
          generate_arrivals(workload, m, weights[static_cast<std::size_t>(m)]);
    }

    std::unique_ptr<server::ServerCore> core;
    std::unique_ptr<OnlinePolicy> policy;
    if (capacity > 0) {
      // Capacity path: slotted batching + live admission decisions.
      const std::string mode = args.get_string("mode");
      server::ServerCoreConfig config;
      config.objects = workload.objects;
      config.delay = delay;
      config.horizon = workload.horizon;
      config.serve = server::ServeMode::kSlottedBatching;
      config.channel_capacity = capacity;
      if (mode == "observe") {
        config.admission = server::AdmissionMode::kObserve;
      } else if (mode == "reject") {
        config.admission = server::AdmissionMode::kReject;
      } else if (mode == "defer") {
        config.admission = server::AdmissionMode::kDefer;
      } else if (mode == "degrade") {
        config.admission = server::AdmissionMode::kDegrade;
      } else {
        throw std::invalid_argument("unknown --mode: " + mode);
      }
      core = std::make_unique<server::ServerCore>(config);
      std::cout << "capacity path: " << capacity << " channels, mode "
                << server::to_string(config.admission) << ", "
                << workload.objects << " objects, delay " << delay << "\n\n";

      // Admission order is global arrival order: merge the traces.
      std::vector<std::pair<double, Index>> arrivals;
      for (Index m = 0; m < workload.objects; ++m) {
        for (const double t : traces[static_cast<std::size_t>(m)]) {
          arrivals.push_back({t, m});
        }
      }
      std::sort(arrivals.begin(), arrivals.end());
      const std::size_t step =
          std::max<std::size_t>(1, arrivals.size() / static_cast<std::size_t>(
                                                         checkpoints));
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        (void)core->admit(arrivals[i].second, arrivals[i].first);
        if ((i + 1) % step == 0) {
          print_live(core->live_stats(), arrivals[i].first, false);
        }
      }
    } else {
      // Policy path: mailbox ingest in horizon chunks with live stats
      // between drains.
      policy = make_policy(args.get_string("policy"));
      server::ServerCoreConfig config;
      config.objects = workload.objects;
      config.delay = delay;
      config.horizon = workload.horizon;
      config.shards = shards;
      config.pin_workers = pin;
      config.enable_sessions = churn.enabled();
      core = std::make_unique<server::ServerCore>(config, *policy);
      std::cout << "policy path: " << policy->name() << ", " << workload.objects
                << " objects over " << config.shards << " shards, delay "
                << delay;
      // The hot-path dispatch decisions, so a log line records which
      // mechanisms this run actually exercised.
      std::cout << "\nhot path: admit dispatch " << core->admit_dispatch()
                << ", ledger kernel " << util::simd::active_kernel() << " ("
                << util::simd::lanes() << " lanes)";
      if (pin) {
        std::cout << ", pinned("
                  << util::ThreadPool::shared_pinned().pinned_workers() << ")";
      } else {
        std::cout << ", floating workers";
      }
      if (churn.enabled()) {
        std::cout << ", churn abandon/pause/seek " << churn.abandon_rate << "/"
                  << churn.pause_rate << "/" << churn.seek_rate;
      }
      std::cout << "\n\n";

      // Under churn each client is a full session trace (arrival plus
      // its pause/seek/abandon events); without it, a bare arrival.
      std::vector<std::vector<SessionTrace>> sessions(
          static_cast<std::size_t>(churn.enabled() ? workload.objects : 0));
      for (Index m = 0; m < workload.objects && churn.enabled(); ++m) {
        sessions[static_cast<std::size_t>(m)] = generate_sessions(
            workload, churn, m, weights[static_cast<std::size_t>(m)]);
      }

      std::vector<std::size_t> cursor(traces.size(), 0);
      for (int chunk = 1; chunk <= checkpoints; ++chunk) {
        // The final chunk uses the horizon exactly: a rounded-down
        // boundary would silently drop tail arrivals.
        const double until = chunk == checkpoints
                                 ? workload.horizon
                                 : workload.horizon * chunk / checkpoints;
        for (Index m = 0; m < workload.objects; ++m) {
          auto& at = cursor[static_cast<std::size_t>(m)];
          if (churn.enabled()) {
            auto& trace = sessions[static_cast<std::size_t>(m)];
            std::vector<SessionTrace> slice;
            while (at < trace.size() && trace[at].arrival <= until) {
              slice.push_back(std::move(trace[at]));
              ++at;
            }
            core->ingest_session_trace(m, std::move(slice));
          } else {
            auto& trace = traces[static_cast<std::size_t>(m)];
            std::vector<double> slice;
            while (at < trace.size() && trace[at] <= until) {
              slice.push_back(trace[at]);
              ++at;
            }
            core->ingest_trace(m, std::move(slice));
          }
        }
        core->drain();
        print_live(core->live_stats(), until, churn.enabled());
      }
    }

    core->finish();
    const server::Snapshot snap = core->take_snapshot();
    std::cout << "\n";
    util::TextTable table({"arrivals", "admitted", "rejected", "streams",
                           "streams served", "peak channels", "p99 wait",
                           "max wait", "violations"});
    table.add_row(snap.total_arrivals, snap.total_arrivals - snap.rejected,
                  snap.rejected, snap.total_streams, snap.streams_served,
                  snap.peak_concurrency, util::format_fixed(snap.wait.p99, 5),
                  util::format_fixed(snap.wait.max, 5),
                  snap.guarantee_violations);
    std::cout << table.to_string();
    if (snap.total_sessions > 0) {
      std::cout << "\nsession lifecycle: " << snap.total_sessions
                << " sessions, " << snap.session_pauses << " pauses, "
                << snap.session_seeks << " seeks, " << snap.session_abandons
                << " abandons\n"
                << "plan repair: " << snap.plan_truncations << " truncations, "
                << snap.plan_reroots << " re-roots, retracted "
                << util::format_fixed(snap.retracted_cost, 3)
                << " media units, extended "
                << util::format_fixed(snap.extended_cost, 3) << "\n";
    }
    std::cout << "\ntop objects by transmitted media units:\n";
    for (Index m = 0; m < std::min<Index>(5, workload.objects); ++m) {
      const server::ObjectOutcome& o = snap.per_object[static_cast<std::size_t>(m)];
      std::cout << "  object " << m << ": " << o.arrivals << " arrivals, "
                << o.streams << " streams, cost " << o.cost << ", own peak "
                << o.peak_concurrency << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
