// Movie multiplex: the Section-5 multi-object server.
//
// A catalogue of movies with Zipf popularity shares one server. Compare
// per-object policies by total bandwidth and by the aggregate *peak*
// channel requirement — the quantity a provisioning engineer actually
// cares about. The Delay Guaranteed policy trades bandwidth for a hard,
// demand-independent peak; the dyadic policies are cheaper on average but
// their peak grows with the offered load.
//
// Run: ./movie_multiplex --movies=10 --gap=0.005 --delay=0.01
//        --horizon=50 --zipf=1.0 --seed=7
#include <cstdlib>
#include <iostream>

#include "sim/multi_object.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace smerge;
  using namespace smerge::sim;

  util::ArgParser args("movie_multiplex: multi-object VoD server comparison");
  args.add_int("movies", 10, "catalogue size");
  args.add_double("gap", 0.005, "aggregate mean inter-arrival gap (media fraction)");
  args.add_double("delay", 0.01, "per-object start-up delay (media fraction)");
  args.add_double("horizon", 50.0, "simulated time in media lengths");
  args.add_double("zipf", 1.0, "popularity skew exponent");
  args.add_int("seed", 7, "RNG seed");
  try {
    if (!args.parse(argc, argv)) {
      std::cout << args.help();
      return EXIT_SUCCESS;
    }
    MultiObjectConfig config;
    config.objects = args.get_int("movies");
    config.mean_gap = args.get_double("gap");
    config.delay = args.get_double("delay");
    config.horizon = args.get_double("horizon");
    config.zipf_exponent = args.get_double("zipf");
    config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

    util::TextTable table({"policy", "streams served", "peak channels"});
    table.set_align(0, util::Align::kLeft);
    const MultiObjectResult dg = run_multi_object(config, Policy::kDelayGuaranteed);
    const MultiObjectResult dyi = run_multi_object(config, Policy::kDyadicImmediate);
    const MultiObjectResult dyb = run_multi_object(config, Policy::kDyadicBatched);
    table.add_row("delay-guaranteed", dg.streams_served, dg.peak_concurrency);
    table.add_row("dyadic (immediate)", dyi.streams_served, dyi.peak_concurrency);
    table.add_row("dyadic (batched)", dyb.streams_served, dyb.peak_concurrency);
    std::cout << table.to_string() << '\n';

    util::TextTable popularity({"movie", "arrivals", "DG streams", "dyadic streams"});
    for (Index m = 0; m < config.objects; ++m) {
      popularity.add_row(m, dg.arrivals_per_object[static_cast<std::size_t>(m)],
                         dg.per_object[static_cast<std::size_t>(m)],
                         dyi.per_object[static_cast<std::size_t>(m)]);
    }
    std::cout << popularity.to_string() << '\n'
              << "Note: the DG peak is a function of the delay alone — the server\n"
              << "can admit any load without exceeding it (Section 5).\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
