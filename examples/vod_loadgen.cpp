// Closed-loop load generator for the vod_server network front end.
//
// Generates the same Zipf/Poisson catalogue workload the in-process
// examples use, partitions the objects round-robin over N connections
// (each connection's streams merged into nondecreasing time order — the
// wire contract and the core's per-object contract in one move), and
// drives them from one thread per connection:
//
//   * closed loop (--window=W, default): at most W admissions
//     outstanding per connection — throughput is set by the server's
//     round-trip, the paper's "client waits for its start-up slot"
//     shape;
//   * open loop (--window=0): admissions go out at full rate, tickets
//     are drained opportunistically and collected at the end;
//   * --think-us adds per-admission client think time;
//   * --churn-every=N closes and reopens each connection every N
//     admissions (outstanding tickets are collected first, so no
//     admission is ever unacknowledged — and per-object order survives
//     because an object never leaves its connection).
//
// Reports aggregate admissions/s and client-observed ticket latency
// percentiles (admit-send to TICKET-decode), then drives the FINISH
// handshake and prints the server's summary.
//
// --verify recomputes the run in process (serial ingest_trace of the
// same workload) and exits non-zero unless the server's FINISHED digest
// matches — wire-fed and trace-fed runs must be byte-identical. The
// server must have been started with the same --objects/--delay/
// --horizon/--policy for the comparison to be meaningful.
//
// Run: ./vod_server --listen --port=7070 --objects=64 &
//      ./vod_loadgen --port=7070 --objects=64 --connections=4 --verify
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/client.h"
#include "online/policy.h"
#include "server/server_core.h"
#include "server/wire.h"
#include "sim/workload.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace smerge;
using clock_type = std::chrono::steady_clock;

std::unique_ptr<OnlinePolicy> make_policy(const std::string& name) {
  if (name == "dg") return std::make_unique<DelayGuaranteedPolicy>();
  if (name == "batching") return std::make_unique<BatchingPolicy>();
  if (name == "greedy") {
    return std::make_unique<GreedyMergePolicy>(merging::DyadicParams{},
                                               /*batched=*/false);
  }
  if (name == "greedy-batched") {
    return std::make_unique<GreedyMergePolicy>(merging::DyadicParams{},
                                               /*batched=*/true);
  }
  throw std::invalid_argument("unknown --policy: " + name);
}

struct ClientOutcome {
  std::uint64_t sent = 0;
  std::uint64_t ticketed = 0;
  std::uint64_t reconnects = 0;
  std::vector<double> latencies_ns;
};

struct ClientPlan {
  std::vector<std::pair<double, Index>> sends;  ///< nondecreasing time
  std::string host;
  std::uint16_t port = 0;
  std::uint64_t window = 0;      ///< 0 = open loop
  std::uint64_t think_us = 0;
  std::uint64_t churn_every = 0;  ///< 0 = never reconnect
};

ClientOutcome run_client(const ClientPlan& plan) {
  ClientOutcome out;
  out.latencies_ns.reserve(plan.sends.size());
  std::vector<clock_type::time_point> sent_at(plan.sends.size());
  net::BlockingClient client;
  client.connect(plan.host, plan.port);
  std::uint64_t acked = 0;
  const auto on_ticket = [&](const net::TicketReply& reply) {
    const auto idx = static_cast<std::size_t>(reply.request_id - 1);
    out.latencies_ns.push_back(std::chrono::duration<double, std::nano>(
                                   clock_type::now() - sent_at[idx])
                                   .count());
    ++out.ticketed;
  };
  const auto collect_all = [&] {
    client.flush();
    while (acked < out.sent) acked += client.poll_tickets(on_ticket, true);
  };
  for (const auto& [time, object] : plan.sends) {
    if (plan.churn_every > 0 && out.sent > 0 &&
        out.sent % plan.churn_every == 0) {
      collect_all();  // a dropped connection would drop its tickets
      client.close();
      client.connect(plan.host, plan.port);
      ++out.reconnects;
    }
    if (plan.window > 0) {
      while (out.sent - acked >= plan.window) {
        client.flush();
        acked += client.poll_tickets(on_ticket, true);
      }
    } else if (out.sent % 256 == 0) {
      acked += client.poll_tickets(on_ticket, false);  // opportunistic
    }
    const std::uint64_t id = client.admit(object, time);
    sent_at[static_cast<std::size_t>(id - 1)] = clock_type::now();
    ++out.sent;
    if (plan.think_us > 0) {
      client.flush();
      std::this_thread::sleep_for(std::chrono::microseconds(plan.think_us));
    }
  }
  collect_all();
  client.close();
  return out;
}

double percentile_ns(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank =
      static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  return values[rank];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smerge::sim;

  util::ArgParser args(
      "vod_loadgen: closed-loop client fleet for vod_server --listen");
  args.add_string("host", "127.0.0.1", "server address");
  args.add_int("port", 7070, "server port");
  args.add_int("connections", 2, "client connections (one thread each)");
  args.add_int("objects", 64,
               "catalogue size — must match the server's --objects");
  args.add_double("gap", 0.002, "aggregate mean inter-arrival gap");
  args.add_double("delay", 0.01,
                  "guaranteed start-up delay; --verify only — must match the "
                  "server's --delay");
  args.add_double("horizon", 20.0,
                  "simulated time span — must match the server's --horizon");
  args.add_int("seed", 42, "workload RNG seed");
  args.add_bool("constant", false, "constant-rate arrivals instead of Poisson");
  args.add_string("policy", "batching",
                  "--verify only — must match the server's --policy");
  args.add_int("window", 8192,
               "max outstanding admissions per connection; 0 = open loop");
  args.add_int("think-us", 0, "client think time per admission, microseconds");
  args.add_int("churn-every", 0,
               "reconnect each connection every N admissions; 0 = never");
  args.add_bool("verify", false,
                "recompute the run in process and fail unless the server's "
                "FINISHED digest matches");
  try {
    if (!args.parse(argc, argv)) {
      std::cout << args.help();
      return EXIT_SUCCESS;
    }
    WorkloadConfig workload;
    workload.process = args.get_bool("constant") ? ArrivalProcess::kConstantRate
                                                 : ArrivalProcess::kPoisson;
    workload.objects = args.get_int("objects");
    workload.mean_gap = args.get_double("gap");
    workload.horizon = args.get_double("horizon");
    workload.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    validate(workload);
    if (args.get_int("connections") < 1) {
      throw std::invalid_argument("--connections must be >= 1");
    }
    if (args.get_int("window") < 0 || args.get_int("think-us") < 0 ||
        args.get_int("churn-every") < 0) {
      throw std::invalid_argument(
          "--window/--think-us/--churn-every must be >= 0");
    }
    if (args.get_int("port") < 1 || args.get_int("port") > 65535) {
      throw std::invalid_argument("--port must be in [1, 65535]");
    }
    const auto connections =
        static_cast<std::size_t>(args.get_int("connections"));

    const std::vector<double> weights =
        zipf_weights(workload.objects, workload.zipf_exponent);
    std::vector<std::vector<double>> traces(
        static_cast<std::size_t>(workload.objects));
    for (Index m = 0; m < workload.objects; ++m) {
      traces[static_cast<std::size_t>(m)] =
          generate_arrivals(workload, m, weights[static_cast<std::size_t>(m)]);
    }

    std::vector<ClientPlan> plans(connections);
    std::uint64_t total_sends = 0;
    for (std::size_t c = 0; c < connections; ++c) {
      ClientPlan& plan = plans[c];
      plan.host = args.get_string("host");
      plan.port = static_cast<std::uint16_t>(args.get_int("port"));
      plan.window = static_cast<std::uint64_t>(args.get_int("window"));
      plan.think_us = static_cast<std::uint64_t>(args.get_int("think-us"));
      plan.churn_every = static_cast<std::uint64_t>(args.get_int("churn-every"));
      for (std::size_t m = c; m < traces.size(); m += connections) {
        for (const double t : traces[m]) {
          plan.sends.emplace_back(t, static_cast<Index>(m));
        }
      }
      std::stable_sort(
          plan.sends.begin(), plan.sends.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      total_sends += plan.sends.size();
    }
    std::cout << "loadgen: " << total_sends << " admissions over "
              << connections << " connections to " << plans[0].host << ":"
              << plans[0].port << " ("
              << (plans[0].window > 0
                      ? "closed loop, window " + std::to_string(plans[0].window)
                      : std::string("open loop"))
              << (plans[0].think_us > 0
                      ? ", think " + std::to_string(plans[0].think_us) + " us"
                      : std::string())
              << (plans[0].churn_every > 0
                      ? ", churn every " + std::to_string(plans[0].churn_every)
                      : std::string())
              << ")\n";

    std::vector<ClientOutcome> outcomes(connections);
    const auto start = clock_type::now();
    {
      std::vector<std::thread> threads;
      threads.reserve(connections);
      for (std::size_t c = 0; c < connections; ++c) {
        threads.emplace_back(
            [&, c] { outcomes[c] = run_client(plans[c]); });
      }
      for (auto& t : threads) t.join();
    }
    const double elapsed_s =
        std::chrono::duration<double>(clock_type::now() - start).count();

    std::uint64_t sent = 0, ticketed = 0, reconnects = 0;
    std::vector<double> latencies;
    for (const ClientOutcome& o : outcomes) {
      sent += o.sent;
      ticketed += o.ticketed;
      reconnects += o.reconnects;
      latencies.insert(latencies.end(), o.latencies_ns.begin(),
                       o.latencies_ns.end());
    }
    util::TextTable table({"admissions", "tickets", "reconnects", "elapsed s",
                           "admissions/s", "ticket p50 ms", "ticket p95 ms",
                           "ticket p99 ms"});
    table.add_row(
        sent, ticketed, reconnects, util::format_fixed(elapsed_s, 3),
        util::format_fixed(
            elapsed_s > 0.0 ? static_cast<double>(sent) / elapsed_s : 0.0, 0),
        util::format_fixed(percentile_ns(latencies, 0.50) / 1e6, 3),
        util::format_fixed(percentile_ns(latencies, 0.95) / 1e6, 3),
        util::format_fixed(percentile_ns(latencies, 0.99) / 1e6, 3));
    std::cout << "\n" << table.to_string();
    if (ticketed != sent) {
      std::cerr << "error: " << sent - ticketed << " admissions never "
                << "ticketed\n";
      return EXIT_FAILURE;
    }

    // Every ticket is in, so every producer is quiesced: certify the run.
    net::BlockingClient control;
    control.connect(plans[0].host, plans[0].port);
    const server::WireSummary summary = control.finish();
    control.close();
    if (!summary.ok) {
      std::cerr << "error: server finish failed (producers still posting? "
                   "see the server log)\n";
      return EXIT_FAILURE;
    }
    util::TextTable server_table({"arrivals", "streams", "streams served",
                                  "peak channels", "p99 wait", "max wait",
                                  "violations"});
    server_table.add_row(summary.total_arrivals, summary.total_streams,
                         summary.streams_served, summary.peak_concurrency,
                         util::format_fixed(summary.wait.p99, 5),
                         util::format_fixed(summary.wait.max, 5),
                         summary.guarantee_violations);
    std::cout << "\nserver summary:\n"
              << server_table.to_string() << "snapshot digest " << std::hex
              << summary.digest << std::dec << "\n";

    if (args.get_bool("verify")) {
      // The same workload, in process: wire-fed and trace-fed runs must
      // agree bit for bit.
      std::unique_ptr<OnlinePolicy> policy =
          make_policy(args.get_string("policy"));
      server::ServerCoreConfig config;
      config.objects = workload.objects;
      config.delay = args.get_double("delay");
      config.horizon = workload.horizon;
      config.shards = 2;
      server::ServerCore reference(config, *policy);
      for (Index m = 0; m < workload.objects; ++m) {
        reference.ingest_trace(
            m, std::vector<double>(traces[static_cast<std::size_t>(m)]));
      }
      reference.finish();
      const std::uint64_t expected =
          server::snapshot_digest(reference.take_snapshot());
      if (expected != summary.digest) {
        std::cerr << "verify: MISMATCH — trace-fed digest " << std::hex
                  << expected << " != wire digest " << summary.digest
                  << std::dec
                  << " (did the server run the same "
                     "--objects/--delay/--horizon/--policy?)\n";
        return EXIT_FAILURE;
      }
      std::cout << "verify: wire-fed and trace-fed snapshots identical\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
