// Capacity planner: "how much delay buys how much bandwidth?"
//
// The Fig.-1 trade-off as a planning tool: sweep the guaranteed start-up
// delay and report the off-line optimal and on-line DG bandwidth, plus the
// peak channel requirement, then pick the smallest delay that fits a
// channel budget. This is the Section-5 argument in executable form: "by
// increasing the guaranteed delay, we can ensure that we never go over
// the fixed maximum bandwidth and still never have to decline a client
// request."
//
// Run: ./capacity_planner --budget=12 --horizon=100
#include <cstdlib>
#include <iostream>
#include <vector>

#include "sim/experiment.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace smerge;
  using namespace smerge::sim;

  util::ArgParser args("capacity_planner: delay vs bandwidth trade-off");
  args.add_int("budget", 12, "peak channel budget for one media object");
  args.add_double("horizon", 100.0, "planning horizon in media lengths");
  try {
    if (!args.parse(argc, argv)) {
      std::cout << args.help();
      return EXIT_SUCCESS;
    }
    const auto budget = args.get_int("budget");
    const double horizon = args.get_double("horizon");

    const std::vector<double> delays{0.001, 0.002, 0.005, 0.01,
                                     0.02,  0.05,  0.10,  0.15};
    util::TextTable table({"delay (% media)", "off-line streams", "on-line streams",
                           "on/off ratio", "peak channels (DG)"});
    double chosen = -1.0;
    Index chosen_peak = 0;
    for (const double d : delays) {
      const BandwidthResult off = run_offline_optimal(d, horizon);
      const BandwidthResult on = run_delay_guaranteed(d, horizon);
      table.add_row(util::format_fixed(100.0 * d, 1), off.streams_served,
                    on.streams_served, on.streams_served / off.streams_served,
                    on.peak_concurrency);
      if (chosen < 0.0 && on.peak_concurrency <= budget) {
        chosen = d;
        chosen_peak = on.peak_concurrency;
      }
    }
    std::cout << table.to_string() << '\n';

    if (chosen < 0.0) {
      std::cout << "No swept delay fits a budget of " << budget
                << " channels; increase the delay beyond 15%.\n";
    } else {
      std::cout << "Smallest swept delay meeting the " << budget
                << "-channel budget: " << 100.0 * chosen << "% of the media ("
                << chosen_peak << " peak channels). The server never declines a "
                << "request at this delay.\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
