#!/usr/bin/env python3
"""Diff two smerge-bench-v1 JSON documents and fail on regressions.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--tol 0.25]
        [--series-tol 1e-9] [--require-all] [--data-only]
        [--threshold 0.15]

Three kinds of checks, applied to every bench present in both files:

  * data checks (hard): the `ok` flag must not regress, and every
    non-timing series common to both runs must match elementwise within
    --series-tol relative error — bench data is deterministic for a
    given --quick/--threads configuration, so any drift is a behaviour
    change, not noise;
  * timing checks: metrics and series whose names look like wall-clock
    measurements (*_ns, *_ms, elapsed*, *speedup is excluded as a
    derived ratio) may regress by at most --tol relative (default 25%).
    Timing checks only make sense between runs on the same machine; pass
    --data-only to skip them entirely (what CI does against the
    committed seed, whose timings came from another host);
  * throughput floor (--threshold X, off by default): every `*_per_s`
    series and metric of the `sim_*` ingest and `net_*` wire benches —
    higher is better — must not drop more than X relative below the
    baseline. This is the
    perf-trend gate CI runs against the committed seed with
    --threshold 0.15; it applies even under --data-only because a
    collapsed ingest rate is the one timing signal worth cross-host
    noise. The concurrent sim_* rates scale with the host's core count,
    so when the two documents record different `hardware_concurrency`
    headers — or only one records it at all — floor breaches are
    demoted to printed notes instead of failures: a 4-core baseline
    against a 2-core candidate is a machine change, not a regression.
    The floor is enforced only when both headers agree (or both
    predate the header, where nothing can be told apart).

Benches present only in the candidate (a bench added since the committed
baseline) are reported as notes, never failures: the baseline simply
predates them — regenerate BENCH_seed.json to put them under the gates.

Exit status: 0 clean, 1 regressions found, 2 usage/schema errors.
"""

import argparse
import json
import math
import sys

TIMING_SUFFIXES = ("_ns", "_ms", "_s")
TIMING_KEYWORDS = ("elapsed",)
# Derived ratios and machine-shape metrics: not comparable across hosts
# and not a regression signal.
NONCOMPARABLE_KEYWORDS = ("speedup", "exponent", "threads")


def is_timing(name: str) -> bool:
    lowered = name.lower()
    return lowered.endswith(TIMING_SUFFIXES) or any(
        k in lowered for k in TIMING_KEYWORDS
    )


def is_noncomparable(name: str) -> bool:
    lowered = name.lower()
    return any(k in lowered for k in NONCOMPARABLE_KEYWORDS)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if doc.get("schema") != "smerge-bench-v1":
        sys.exit(f"error: {path} is not a smerge-bench-v1 document")
    return doc


def rel_excess(old: float, new: float) -> float:
    """How far `new` exceeds `old`, relative to `old` (0 when new <= old)."""
    if new <= old:
        return 0.0
    return (new - old) / old if old > 0 else math.inf


def rel_shortfall(old: float, new: float) -> float:
    """How far `new` falls below `old`, relative to `old` (0 when new >= old)."""
    if new >= old or old <= 0:
        return 0.0
    return (old - new) / old


def is_throughput(name: str) -> bool:
    return name.lower().endswith("_per_s")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="diff two smerge-bench-v1 files, fail on regressions"
    )
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--tol",
        type=float,
        default=0.25,
        help="max relative timing regression (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--series-tol",
        type=float,
        default=1e-9,
        help="max relative elementwise drift for data series",
    )
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="fail if a baseline bench is missing from the candidate",
    )
    parser.add_argument(
        "--data-only",
        action="store_true",
        help="skip all timing comparisons (use when baseline and candidate "
        "ran on different machines, e.g. CI vs the committed seed)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="X",
        help="fail when any *_per_s throughput series/metric of a sim_*/"
        "net_* bench drops more than X relative below the baseline (e.g. "
        "0.15 = 15%%); applies even with --data-only",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    base_benches = {b["name"]: b for b in base.get("benches", [])}
    cand_benches = {b["name"]: b for b in cand.get("benches", [])}

    # Concurrency-sensitive throughput floors only bind between
    # comparable hosts: demote breaches to notes when the recorded core
    # counts differ or only one document carries the header.
    base_cores = base.get("hardware_concurrency")
    cand_cores = cand.get("hardware_concurrency")
    comparable_hosts = base_cores == cand_cores
    host_note = ""
    if not comparable_hosts:
        host_note = (
            f"hardware_concurrency {base_cores} -> {cand_cores}: "
            "throughput floors reported as notes, not failures"
        )

    failures: list[str] = []
    notes: list[str] = []
    if host_note:
        notes.append(host_note)
    compared = 0
    for name, old in sorted(base_benches.items()):
        new = cand_benches.get(name)
        if new is None:
            msg = f"{name}: present in baseline, missing from candidate"
            (failures if args.require_all else notes).append(msg)
            continue
        compared += 1

        if old.get("ok", False) and not new.get("ok", False):
            failures.append(f"{name}: ok regressed true -> false")

        # Data series: deterministic, compared exactly (within fp slack).
        old_series = old.get("series", {})
        new_series = new.get("series", {})
        for sname, old_vals in old_series.items():
            if is_timing(sname) or is_noncomparable(sname):
                continue
            new_vals = new_series.get(sname)
            if new_vals is None:
                failures.append(f"{name}/{sname}: data series disappeared")
                continue
            if len(new_vals) != len(old_vals):
                failures.append(
                    f"{name}/{sname}: length {len(old_vals)} -> {len(new_vals)}"
                )
                continue
            for idx, (a, b) in enumerate(zip(old_vals, new_vals)):
                if abs(a - b) > args.series_tol * max(1.0, abs(a)):
                    failures.append(
                        f"{name}/{sname}[{idx}]: {a!r} -> {b!r} "
                        f"(data drift > {args.series_tol})"
                    )
                    break

        # Throughput floor: the perf-trend gate for the ingest benches.
        # `*_per_s` names carry the "_s" timing suffix, so the data checks
        # above skip them; this is the check that owns them. Higher is
        # better — fail only on a drop past --threshold.
        if args.threshold is not None and name.startswith(("sim_", "net_")):
            # Breaches bind only between comparable hosts; on a core-count
            # change they are informational. Shape mismatches stay hard
            # failures either way — a vanished series is a data change.
            floor_sink = failures if comparable_hosts else notes
            for sname, old_vals in old_series.items():
                if not is_throughput(sname):
                    continue
                new_vals = new_series.get(sname)
                if new_vals is None or len(new_vals) != len(old_vals):
                    failures.append(
                        f"{name}/{sname}: throughput series missing or "
                        f"reshaped in candidate"
                    )
                    continue
                for idx, (a, b) in enumerate(zip(old_vals, new_vals)):
                    drop = rel_shortfall(float(a), float(b))
                    if drop > args.threshold:
                        floor_sink.append(
                            f"{name}/{sname}[{idx}]: {a:.0f} -> {b:.0f} "
                            f"(-{100 * drop:.1f}% < -{100 * args.threshold:.0f}% "
                            f"throughput floor)"
                        )
            for mname, old_val in old.get("metrics", {}).items():
                if not is_throughput(mname) or not isinstance(
                    old_val, (int, float)
                ):
                    continue
                new_val = new.get("metrics", {}).get(mname)
                if not isinstance(new_val, (int, float)):
                    continue
                drop = rel_shortfall(float(old_val), float(new_val))
                if drop > args.threshold:
                    floor_sink.append(
                        f"{name}/{mname}: {old_val:.0f} -> {new_val:.0f} "
                        f"(-{100 * drop:.1f}% < -{100 * args.threshold:.0f}% "
                        f"throughput floor)"
                    )

        # Timing metrics: allow up to --tol relative regression.
        if args.data_only:
            continue
        old_metrics = old.get("metrics", {})
        new_metrics = new.get("metrics", {})
        for mname, old_val in old_metrics.items():
            if not is_timing(mname) or is_noncomparable(mname):
                continue
            new_val = new_metrics.get(mname)
            if new_val is None or not (
                isinstance(old_val, (int, float)) and old_val > 0
            ):
                continue
            excess = rel_excess(float(old_val), float(new_val))
            if excess > args.tol:
                failures.append(
                    f"{name}/{mname}: {old_val:.0f} -> {new_val:.0f} "
                    f"(+{100 * excess:.1f}% > {100 * args.tol:.0f}%)"
                )

        if "elapsed_ms" in old and "elapsed_ms" in new:
            excess = rel_excess(float(old["elapsed_ms"]), float(new["elapsed_ms"]))
            if excess > args.tol:
                failures.append(
                    f"{name}/elapsed_ms: {old['elapsed_ms']:.1f} -> "
                    f"{new['elapsed_ms']:.1f} (+{100 * excess:.1f}% > "
                    f"{100 * args.tol:.0f}%)"
                )

    # Benches the baseline predates: informational only — the next seed
    # regeneration brings them under the data/floor gates.
    for name in sorted(set(cand_benches) - set(base_benches)):
        notes.append(
            f"{name}: new bench, absent from baseline — regenerate "
            "BENCH_seed.json to gate it"
        )

    for msg in notes:
        print(f"note: {msg}")
    if compared == 0:
        print("error: no benches in common", file=sys.stderr)
        return 2
    if failures:
        print(f"{len(failures)} regression(s) across {compared} benches:")
        for msg in failures:
            print(f"  FAIL {msg}")
        return 1
    print(f"ok: {compared} benches compared, no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
