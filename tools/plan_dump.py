#!/usr/bin/env python3
"""Pretty-print a smerge-plan-v2 MergePlan JSON dump.

Usage:
    tools/plan_dump.py [PLAN.json] [--max-rows N]

Reads the document from PLAN.json (or stdin when omitted), validates the
schema and the embedded verifier report, renders a per-stream table and
a forest sketch — plus, for v2 documents, the segment timeline, the
in-place repair log and the per-stream active mask — and exits 1 when
`verify.ok` is false — the CI smoke check runs it on one off-line and
one on-line plan.
"""

import argparse
import json
import sys

REQUIRED_ARRAYS = ("start", "delay", "parent", "merge_time", "length")


def load(path: str | None) -> dict:
    try:
        if path is None or path == "-":
            doc = json.load(sys.stdin)
        else:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read plan dump: {exc}")
    if doc.get("schema") != "smerge-plan-v2":
        sys.exit("error: not a smerge-plan-v2 document")
    n = doc.get("streams")
    for name in REQUIRED_ARRAYS:
        if len(doc.get(name, [])) != n:
            sys.exit(f"error: field '{name}' does not hold {n} entries")
    return doc


def fmt(x: float) -> str:
    return f"{x:.6g}"


def render_table(doc: dict, max_rows: int) -> None:
    n = doc["streams"]
    active = doc.get("active", [])
    header = f"{'id':>5} {'start':>10} {'delay':>9} {'parent':>6} " \
             f"{'length':>10} {'merge_time':>10}"
    if active:
        header += f" {'active':>6}"
    print(header)
    print("-" * len(header))
    shown = min(n, max_rows)
    for i in range(shown):
        parent = doc["parent"][i]
        row = (f"{i:>5} {fmt(doc['start'][i]):>10} {fmt(doc['delay'][i]):>9} "
               f"{parent if parent >= 0 else '-':>6} "
               f"{fmt(doc['length'][i]):>10} {fmt(doc['merge_time'][i]):>10}")
        if active:
            row += f" {'yes' if active[i] else 'no':>6}"
        print(row)
    if shown < n:
        print(f"... ({n - shown} more streams)")


def render_chunking(doc: dict) -> None:
    chunking = doc.get("chunking", {})
    if not chunking.get("enabled"):
        return
    ends = chunking.get("chunk_ends", [])
    print(f"chunking: base={fmt(chunking['base'])} growth={fmt(chunking['growth'])} "
          f"cap={fmt(chunking['cap'])} "
          f"min_start_chunks={chunking['min_start_chunks']} "
          f"({len(ends)} chunks)")


def render_repairs(doc: dict, max_rows: int) -> None:
    repairs = doc.get("repairs", [])
    if not repairs:
        return
    print(f"\nrepairs ({len(repairs)} end moves):")
    header = f"{'stream':>6} {'old_end':>10} {'new_end':>10} {'kind':>10}"
    print(header)
    print("-" * len(header))
    for edit in repairs[:max_rows]:
        kind = "re-root" if edit["reroot"] else (
            "retract" if edit["new_end"] < edit["old_end"] else "extend")
        print(f"{edit['stream']:>6} {fmt(edit['old_end']):>10} "
              f"{fmt(edit['new_end']):>10} {kind:>10}")
    if len(repairs) > max_rows:
        print(f"... ({len(repairs) - max_rows} more repairs)")


def render_forest(doc: dict, max_rows: int) -> None:
    """Indented forest sketch (roots flush left), capped at max_rows."""
    n = doc["streams"]
    children: list[list[int]] = [[] for _ in range(n)]
    roots = []
    for i, p in enumerate(doc["parent"]):
        if p < 0:
            roots.append(i)
        else:
            children[p].append(i)
    printed = 0
    stack = [(r, 0) for r in reversed(roots)]
    while stack and printed < max_rows:
        node, depth = stack.pop()
        print("  " * depth +
              f"#{node} @{fmt(doc['start'][node])} len {fmt(doc['length'][node])}")
        printed += 1
        for child in reversed(children[node]):
            stack.append((child, depth + 1))
    if stack:
        print(f"... ({n - printed} more streams)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("plan", nargs="?", default=None,
                        help="plan JSON path (default: stdin)")
    parser.add_argument("--max-rows", type=int, default=40,
                        help="cap the table / sketch at this many streams")
    args = parser.parse_args()

    doc = load(args.plan)
    verify = doc.get("verify", {})
    print(f"MergePlan ({doc['model']}): {doc['streams']} streams, "
          f"{doc['roots']} roots, media length {fmt(doc['media_length'])}")
    print(f"verify: ok={verify.get('ok')}  cost={fmt(verify.get('total_cost', 0.0))}  "
          f"peak={verify.get('peak_bandwidth')}  "
          f"max_concurrent={verify.get('max_concurrent')}  "
          f"peak_buffer={fmt(verify.get('peak_buffer', 0.0))} "
          f"(bound {fmt(verify.get('buffer_bound', 0.0))})  "
          f"max_delay={fmt(verify.get('max_delay', 0.0))}")
    render_chunking(doc)
    if doc["streams"] > 0:
        print()
        render_table(doc, args.max_rows)
        print()
        render_forest(doc, args.max_rows)
    render_repairs(doc, args.max_rows)
    if not verify.get("ok"):
        print(f"\nVERIFY FAILED: {verify.get('first_error', '(no error recorded)')}")
        for diag in verify.get("diagnostics", [])[:10]:
            print(f"  [{diag['invariant']}] stream {diag['stream']}: "
                  f"{diag['message']}")
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
